#include "simcheck/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "mpisim/rank_state.hpp"
#include "smt/chip.hpp"

namespace smtbal::simcheck {

namespace {

// Asserts one invariant: counts the check, and on failure builds the
// message (stream expression, evaluated only when failing) and records it.
#define SC_EXPECT(cond, streamed)         \
  do {                                    \
    ++stats_.checks;                      \
    if (!(cond)) {                        \
      std::ostringstream os_;             \
      os_ << streamed;                    \
      fail(os_.str());                    \
    }                                     \
  } while (false)

[[nodiscard]] std::uint32_t weight_for(int level, int p_min) {
  return (1u << (level - p_min + 1)) - 1u;
}

}  // namespace

std::optional<std::string> check_decode_schedule(
    const smt::DecodeSchedule& schedule,
    std::span<const smt::HwPriority> priorities) {
  const std::size_t n = priorities.size();
  const auto violation = [](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return std::optional<std::string>(os.str());
  };

  if (n < 1 || n > 64) return violation("priority vector size ", n);
  if (schedule.slots.size() != n || schedule.runs.size() != n ||
      schedule.leftover_only.size() != n) {
    return violation("per-context vectors sized for ", schedule.slots.size(),
                     " contexts, expected ", n);
  }
  if (schedule.slice_cycles < 1) return violation("empty decode slice");
  if (schedule.owner_of_pos.size() != schedule.slice_cycles) {
    return violation("owner table has ", schedule.owner_of_pos.size(),
                     " positions for a slice of ", schedule.slice_cycles);
  }

  // Classify contexts straight from Table I semantics: 0 = shut off,
  // 1 = VERY-LOW (leftover rule), > 1 = owns decode cycles.
  std::vector<std::size_t> active;
  std::vector<std::size_t> very_low;
  for (std::size_t i = 0; i < n; ++i) {
    const int l = smt::level(priorities[i]);
    const bool expect_runs = l > 0;
    if (static_cast<bool>(schedule.runs[i]) != expect_runs) {
      return violation("context ", i, " at priority ", l, " has runs=",
                       int{schedule.runs[i]});
    }
    if (l > 1) active.push_back(i);
    if (l == 1) very_low.push_back(i);
  }

  // Build the expected slice independently and compare field by field.
  std::uint32_t expect_slice = 1;
  std::vector<std::uint32_t> expect_slots(n, 0);
  std::vector<std::uint8_t> expect_leftover(n, 0);
  std::vector<std::int32_t> expect_owner;

  if (!active.empty()) {
    // Table II, weighted for N contexts: with p_min the lowest
    // cycle-owning priority present, context i owns
    // w_i = 2^(p_i - p_min + 1) - 1 cycles, laid out as contiguous runs
    // in ascending (priority, slot) order; VERY-LOW contexts own nothing
    // and take leftovers (Table III).
    int p_min = 8;
    for (const std::size_t i : active) {
      p_min = std::min(p_min, smt::level(priorities[i]));
    }
    std::vector<std::size_t> order = active;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return smt::level(priorities[a]) <
                              smt::level(priorities[b]);
                     });
    expect_slice = 0;
    for (const std::size_t i : order) {
      expect_slice += weight_for(smt::level(priorities[i]), p_min);
    }
    expect_owner.assign(expect_slice, -1);
    std::uint32_t pos = 0;
    for (const std::size_t i : order) {
      const std::uint32_t w = weight_for(smt::level(priorities[i]), p_min);
      expect_slots[i] = w;
      for (std::uint32_t c = 0; c < w; ++c) {
        expect_owner[pos++] = static_cast<std::int32_t>(i);
      }
    }
    for (const std::size_t i : very_low) expect_leftover[i] = 1;

    // Cross-check the N = 2 case against Table II verbatim: a pair at
    // priorities X, Y > 1 shares a slice of R = 2^(|X-Y|+1) cycles, the
    // lower-priority thread owning 1 and the other R - 1.
    if (n == 2 && active.size() == 2) {
      const int x = smt::level(priorities[0]);
      const int y = smt::level(priorities[1]);
      const std::uint32_t r = 1u << (std::abs(x - y) + 1);
      const std::uint32_t lo = x == y ? r / 2 : 1;
      if (expect_slice != r || expect_slots[x <= y ? 0 : 1] != lo) {
        return violation("internal: weighted layout disagrees with Table II",
                         " for priorities (", x, ",", y, ")");
      }
    }
  } else if (!very_low.empty()) {
    // Table III power-save: every running context is VERY-LOW. One
    // runner decodes 1 of 32 cycles; k >= 2 runners decode 1 of 64 each,
    // spread evenly.
    if (very_low.size() == 1) {
      expect_slice = 32;
      expect_owner.assign(32, -1);
      expect_owner[0] = static_cast<std::int32_t>(very_low[0]);
      expect_slots[very_low[0]] = 1;
    } else {
      expect_slice = 64;
      expect_owner.assign(64, -1);
      const std::uint32_t stride =
          64u / static_cast<std::uint32_t>(very_low.size());
      for (std::size_t j = 0; j < very_low.size(); ++j) {
        expect_owner[j * stride] = static_cast<std::int32_t>(very_low[j]);
        expect_slots[very_low[j]] = 1;
      }
    }
  } else {
    // All contexts shut off: a 1-cycle slice nobody owns.
    expect_owner.assign(1, -1);
  }

  if (schedule.slice_cycles != expect_slice) {
    return violation("slice of ", schedule.slice_cycles, " cycles, expected ",
                     expect_slice);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (schedule.slots[i] != expect_slots[i]) {
      return violation("context ", i, " owns ", schedule.slots[i],
                       " cycles, expected ", expect_slots[i]);
    }
    if (schedule.leftover_only[i] != expect_leftover[i]) {
      return violation("context ", i, " leftover_only=",
                       int{schedule.leftover_only[i]}, ", expected ",
                       int{expect_leftover[i]});
    }
  }
  for (std::uint32_t p = 0; p < expect_slice; ++p) {
    if (schedule.owner_of_pos[p] != expect_owner[p]) {
      return violation("cycle ", p, " owned by ", schedule.owner_of_pos[p],
                       ", expected ", expect_owner[p]);
    }
  }
  return std::nullopt;
}

void InvariantObserver::watch_interconnect(const cluster::Interconnect* inter) {
  interconnect_ = inter;
  link_busy_.clear();
}

void InvariantObserver::on_bind(const mpisim::AuditSource* audit) {
  source_ = audit;
}

void InvariantObserver::on_start(std::size_t num_ranks) {
  num_ranks_ = num_ranks;
  interval_end_.assign(num_ranks, 0.0);
  last_now_ = 0.0;
  last_epoch_ = 0;
  finished_ = false;
}

void InvariantObserver::on_event(const mpisim::Event& event) {
  ++stats_.events;
  SC_EXPECT(std::isfinite(event.time) && event.time >= 0.0,
            "event " << to_string(event.kind) << " at non-finite time "
                     << event.time);
  SC_EXPECT(static_cast<std::size_t>(event.kind) < mpisim::kNumEventKinds,
            "event kind " << static_cast<int>(event.kind) << " out of range");
  switch (event.kind) {
    case mpisim::EventKind::kComputeDone:
    case mpisim::EventKind::kDelayDone:
    case mpisim::EventKind::kPriorityChange:
      SC_EXPECT(event.subject < num_ranks_,
                to_string(event.kind) << " subject rank " << event.subject
                                      << " out of range");
      break;
    case mpisim::EventKind::kMsgArrival:
      SC_EXPECT(event.msg.dst < num_ranks_ && event.msg.src < num_ranks_,
                "message " << event.msg.src << "->" << event.msg.dst
                           << " names a rank out of range");
      break;
    default:
      break;
  }
  audit_now(&event);
}

void InvariantObserver::on_interval(RankId rank, SimTime begin, SimTime end,
                                    trace::RankState state) {
  const auto r = static_cast<std::size_t>(rank.value());
  SC_EXPECT(r < num_ranks_, "interval for rank " << rank.value()
                                                 << " out of range");
  if (r >= num_ranks_) return;
  SC_EXPECT(std::isfinite(begin) && std::isfinite(end) && end > begin,
            "rank " << rank.value() << " interval [" << begin << ", " << end
                    << ") " << trace::to_string(state)
                    << " is empty or non-finite");
  // The trace of one rank tiles time: each interval starts exactly where
  // the previous one ended (the simulation core carries state_since
  // forward through zero-length state flips).
  SC_EXPECT(begin == interval_end_[r],
            "rank " << rank.value() << " interval starts at " << begin
                    << " but the previous one ended at " << interval_end_[r]);
  interval_end_[r] = end;
}

void InvariantObserver::on_priority_change(RankId rank, int from, int to,
                                           SimTime now) {
  // May arrive before on_bind: static policies apply priorities during
  // engine start-up, before the event loop exists (now = 0).
  SC_EXPECT(from != to, "rank " << rank.value()
                                << " priority 'change' to the same level "
                                << from);
  SC_EXPECT(from >= 0 && from <= 7 && to >= 0 && to <= 7,
            "rank " << rank.value() << " priority change " << from << " -> "
                    << to << " outside the 0..7 hardware range");
  SC_EXPECT(std::isfinite(now) && now >= 0.0,
            "priority change at non-finite time " << now);
}

void InvariantObserver::on_epoch(const mpisim::EpochReport& report) {
  SC_EXPECT(report.epoch == last_epoch_ + 1,
            "epoch " << report.epoch << " follows epoch " << last_epoch_);
  last_epoch_ = report.epoch;
  SC_EXPECT(std::isfinite(report.now) && report.now >= 0.0,
            "epoch boundary at non-finite time " << report.now);
  SC_EXPECT(report.ranks.size() == num_ranks_,
            "epoch report covers " << report.ranks.size() << " of "
                                   << num_ranks_ << " ranks");
  for (std::size_t r = 0; r < report.ranks.size(); ++r) {
    const mpisim::RankEpochStats& stats = report.ranks[r];
    SC_EXPECT(std::isfinite(stats.compute) && stats.compute >= 0.0 &&
                  std::isfinite(stats.wait) && stats.wait >= 0.0,
              "epoch " << report.epoch << " rank " << r
                       << " has negative or non-finite accumulators");
  }
}

void InvariantObserver::on_finish(SimTime end_time) {
  SC_EXPECT(std::isfinite(end_time) && end_time >= 0.0,
            "run finished at non-finite time " << end_time);
  if (source_ != nullptr) {
    source_->invariant_audit(audit_);
    SC_EXPECT(audit_.ranks_done == audit_.ranks.size(),
              "run finished with " << audit_.ranks_done << " of "
                                   << audit_.ranks.size() << " ranks done");
  }
  finished_ = true;
}

void InvariantObserver::fail(std::string message) {
  ++stats_.violations;
  if (violations_.size() < options_.max_recorded) {
    violations_.push_back(message);
  }
  if (options_.throw_on_violation) {
    throw SimulationError("invariant violated: " + std::move(message));
  }
}

void InvariantObserver::audit_now(const mpisim::Event* event) {
  if (source_ == nullptr) return;
  source_->invariant_audit(audit_);
  SC_EXPECT(std::isfinite(audit_.now) && audit_.now >= last_now_,
            "clock ran backwards: " << audit_.now << " after " << last_now_);
  if (event != nullptr) {
    // run() folds the popped time into the clock before notifying, and
    // meta events are synthesized at the clock, so every published event
    // time is bounded by the audited now.
    SC_EXPECT(event->time <= audit_.now,
              to_string(event->kind) << " at " << event->time
                                     << " published after the clock reached "
                                     << audit_.now);
  }
  last_now_ = audit_.now;
  check_ranks(audit_);
  check_decode(audit_);
  check_interconnect();
}

void InvariantObserver::check_ranks(const mpisim::InvariantAudit& audit) {
  std::size_t done = 0;
  std::size_t waiting_unreleased = 0;
  for (std::size_t r = 0; r < audit.ranks.size(); ++r) {
    const mpisim::RankAudit& rank = audit.ranks[r];
    SC_EXPECT(std::isfinite(rank.remaining) && std::isfinite(rank.rate) &&
                  rank.rate >= 0.0,
              "rank " << r << " integration segment remaining="
                      << rank.remaining << " rate=" << rank.rate);
    SC_EXPECT(!std::isnan(rank.ready_at),
              "rank " << r << " blocking time is NaN");
    if (rank.state == mpisim::RunState::kDone) ++done;
    if (rank.state == mpisim::RunState::kAtBarrier &&
        rank.ready_at == mpisim::kSimInf) {
      ++waiting_unreleased;
    }
    SC_EXPECT(!rank.predicted || rank.state == mpisim::RunState::kComputing,
              "rank " << r << " in state " << mpisim::to_string(rank.state)
                      << " holds a compute prediction");
  }
  SC_EXPECT(done == audit.ranks_done,
            audit.ranks_done << " ranks counted done but " << done
                             << " are in state kDone");
  // Conservation of collective arrivals: the counter equals the number of
  // ranks parked at the barrier whose release time is still unknown (the
  // last arriver assigns every release and resets the counter).
  SC_EXPECT(audit.collective_arrived == waiting_unreleased,
            audit.collective_arrived
                << " collective arrivals recorded but " << waiting_unreleased
                << " ranks are at an unreleased barrier");
}

void InvariantObserver::check_decode(const mpisim::InvariantAudit& audit) {
  for (std::size_t n = 0; n < audit.nodes.size(); ++n) {
    const mpisim::NodeAudit& node = audit.nodes[n];
    const std::uint32_t contexts = node.chip->num_contexts();
    SC_EXPECT(node.priorities.size() == contexts &&
                  node.engaged.size() == contexts,
              "node " << n << " audit covers " << node.priorities.size()
                      << " of " << contexts << " contexts");
    decode_buf_.resize(contexts);
    for (std::uint32_t c = 0; c < contexts; ++c) {
      // A context with no process is either still at the spawn default
      // (never occupied) or parked at OFF by the idle loop after its
      // process exited; anything else means a priority write leaked.
      SC_EXPECT(node.engaged[c] != 0 ||
                    node.priorities[c] == smt::HwPriority::kOff ||
                    node.priorities[c] == smt::kDefaultPriority,
                "node " << n << " context " << c
                        << " is idle but reports priority "
                        << smt::level(node.priorities[c]));
      SC_EXPECT(node.engaged[c] == 0 ||
                    node.priorities[c] != smt::HwPriority::kOff,
                "node " << n << " context " << c
                        << " runs a process at priority OFF");
      // The chip schedules idle contexts as OFF whatever the kernel's
      // bookkeeping says; check the decode rules over that view.
      decode_buf_[c] = node.engaged[c] != 0 ? node.priorities[c]
                                            : smt::HwPriority::kOff;
    }
    // Rebuild each core's decode slice from the effective priorities and
    // hold it against the independent Table II/III restatement.
    const std::uint32_t tpc = node.chip->threads_per_core();
    for (std::uint32_t core = 0; core < node.chip->num_cores; ++core) {
      const std::span<const smt::HwPriority> slots(
          decode_buf_.data() + core * tpc, tpc);
      const smt::DecodeSchedule schedule = smt::decode_schedule(slots);
      ++stats_.checks;
      if (const auto error = check_decode_schedule(schedule, slots)) {
        std::ostringstream os;
        os << "node " << n << " core " << core << " decode schedule: "
           << *error;
        fail(os.str());
      }
    }
  }
}

void InvariantObserver::check_interconnect() {
  if (interconnect_ == nullptr) return;
  const std::vector<SimTime>& busy = interconnect_->link_busy_until();
  if (link_busy_.size() != busy.size()) {
    link_busy_ = busy;  // first observation of this wiring
    return;
  }
  for (std::size_t l = 0; l < busy.size(); ++l) {
    SC_EXPECT(std::isfinite(busy[l]) && busy[l] >= link_busy_[l],
              "interconnect link " << l << " busy-until moved from "
                                   << link_busy_[l] << " back to " << busy[l]);
  }
  link_busy_ = busy;
}

}  // namespace smtbal::simcheck
