#include "simcheck/scenario.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <sstream>
#include <string_view>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "isa/kernel.hpp"
#include "workloads/drift.hpp"
#include "workloads/master_worker.hpp"
#include "workloads/stencil.hpp"

namespace smtbal::simcheck {

namespace {

/// Compute-phase kernel pool. Deliberately excludes the spin kernel: a
/// compute phase running the spin kernel would leave the chip load key
/// unchanged when a rank blocks, and the engine's load-key skip then
/// re-orders simultaneous prediction pushes in a way the oracle does not
/// model (oracle.hpp, domain restrictions).
constexpr std::array<std::string_view, 8> kComputePool = {
    isa::kKernelFpuStress, isa::kKernelIntStress,  isa::kKernelL2Stress,
    isa::kKernelMemStress, isa::kKernelBranchStress, isa::kKernelHpcMixed,
    isa::kKernelCfd,       isa::kKernelDft,
};

isa::KernelId pick_kernel(Rng& rng) {
  const auto name = kComputePool[rng.below(kComputePool.size())];
  return isa::KernelRegistry::instance().by_name(name).id;
}

/// Families 1..3 delegate to the real workload builders with rng-drawn
/// parameters. Instruction counts stay in the same cheap 1e5..1e6 band as
/// the block generator so a fuzz iteration's cost is family-independent.
mpisim::Application build_family_app(const ScenarioSpec& spec, Rng& rng) {
  const std::string kernel(kComputePool[rng.below(kComputePool.size())]);
  const double instructions = 1e5 + rng.uniform() * 9e5;
  const int iterations = static_cast<int>(spec.blocks);
  switch (spec.family) {
    case 1: {
      workloads::StencilConfig config;
      config.num_ranks = spec.num_ranks;
      config.iterations = iterations;
      config.load_kernel = kernel;
      config.base_instructions = instructions;
      config.peak_factor = 1.0 + rng.uniform() * 2.0;
      config.halo_bytes = 8 * rng.range(1, 512);
      config.periodic = rng.chance(0.5);
      return workloads::build_stencil(config);
    }
    case 2: {
      workloads::MasterWorkerConfig config;
      config.num_ranks = spec.num_ranks;
      config.rounds = iterations;
      config.load_kernel = kernel;
      config.work_instructions = instructions;
      config.master_instructions = rng.chance(0.25) ? 0.0 : instructions * 0.1;
      config.task_bytes = 8 * rng.range(1, 512);
      config.result_bytes = 8 * rng.range(1, 512);
      config.straggler_period = rng.chance(0.25) ? 0 : 1;
      config.straggler_factor = 1.5 + rng.uniform() * 2.5;
      return workloads::build_master_worker(config);
    }
    default: {
      workloads::DriftConfig config;
      config.num_ranks = spec.num_ranks;
      config.iterations = iterations;
      config.load_kernel = kernel;
      config.base_instructions = instructions;
      config.peak_factor = 1.5 + rng.uniform() * 2.5;
      config.front_width = 1.0 + rng.uniform() * 2.0;
      config.drift_speed = rng.uniform() * 1.5;
      if (rng.chance(0.3)) config.stat_duration = 1e-5 + rng.uniform() * 9e-4;
      return workloads::build_drift(config);
    }
  }
}

}  // namespace

ScenarioSpec sanitize_spec(ScenarioSpec spec) {
  spec.threads_per_core = spec.threads_per_core <= 2 ? 2u : 4u;
  spec.num_cores = std::clamp(spec.num_cores, 1u, 4u);
  spec.num_nodes = std::clamp(spec.num_nodes, 1u, 4u);
  const std::uint32_t seats =
      spec.num_nodes * spec.num_cores * spec.threads_per_core;
  spec.num_ranks = std::clamp(spec.num_ranks, 2u, std::max(seats, 2u));
  spec.num_nodes = std::min(spec.num_nodes, spec.num_ranks);
  spec.blocks = std::clamp(spec.blocks, 1u, 8u);
  spec.family = std::min(spec.family, 3u);
  if (spec.num_nodes < 2) spec.hetero = false;
  if (spec.num_nodes < 2) spec.migrate = false;
  if (spec.migrate) {
    // Migrations need free seats to land on: cap ranks at half the
    // cluster's capacity (num_ranks >= 2 keeps num_nodes >= 2 below).
    const std::uint32_t cluster_seats =
        spec.num_nodes * spec.num_cores * spec.threads_per_core;
    spec.num_ranks =
        std::clamp(spec.num_ranks, 2u, std::max(cluster_seats / 2, 2u));
    spec.num_nodes = std::min(spec.num_nodes, spec.num_ranks);
  }
  return spec;
}

std::string to_string(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "seed=" << spec.seed << " ranks=" << spec.num_ranks
     << " nodes=" << spec.num_nodes << " cores=" << spec.num_cores
     << " smt=" << spec.threads_per_core << " blocks=" << spec.blocks
     << " flavor=" << (spec.vanilla ? "vanilla" : "patched")
     << " noise=" << (spec.with_noise ? 1 : 0)
     << " prios=" << (spec.with_priorities ? 1 : 0)
     << " cyclic=" << (spec.cyclic_placement ? 1 : 0)
     << " family=" << spec.family << " hetero=" << (spec.hetero ? 1 : 0);
  // Emitted only when set: every historical spec string — including the
  // canonical keys the evaluation service hashes — stays byte-identical.
  if (spec.migrate) os << " migrate=1";
  return os.str();
}

namespace {

std::uint64_t parse_spec_number(std::string_view token, std::string_view value,
                                std::uint64_t max) {
  std::uint64_t out = 0;
  if (value.empty()) {
    throw InvalidArgument("scenario spec token '" + std::string(token) +
                          "': empty value");
  }
  for (const char c : value) {
    if (c < '0' || c > '9' || out > max / 10) {
      throw InvalidArgument("scenario spec token '" + std::string(token) +
                            "': expected an unsigned integer <= " +
                            std::to_string(max));
    }
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
    if (out > max) {
      throw InvalidArgument("scenario spec token '" + std::string(token) +
                            "': expected an unsigned integer <= " +
                            std::to_string(max));
    }
  }
  return out;
}

bool parse_spec_flag(std::string_view token, std::string_view value) {
  if (value == "1") return true;
  if (value == "0") return false;
  throw InvalidArgument("scenario spec token '" + std::string(token) +
                        "': expected 0 or 1");
}

}  // namespace

ScenarioSpec parse_spec_string(std::string_view text) {
  ScenarioSpec spec;
  constexpr std::uint64_t kU32Max = 0xffff'ffffULL;
  constexpr std::uint64_t kU64Max = ~std::uint64_t{0};
  std::size_t pos = 0;
  while (pos < text.size()) {
    if (text[pos] == ' ') {
      ++pos;
      continue;
    }
    const std::size_t end = std::min(text.find(' ', pos), text.size());
    const std::string_view token = text.substr(pos, end - pos);
    pos = end;
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw InvalidArgument("scenario spec token '" + std::string(token) +
                            "': expected key=value");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "seed") {
      spec.seed = parse_spec_number(token, value, kU64Max);
    } else if (key == "ranks") {
      spec.num_ranks =
          static_cast<std::uint32_t>(parse_spec_number(token, value, kU32Max));
    } else if (key == "nodes") {
      spec.num_nodes =
          static_cast<std::uint32_t>(parse_spec_number(token, value, kU32Max));
    } else if (key == "cores") {
      spec.num_cores =
          static_cast<std::uint32_t>(parse_spec_number(token, value, kU32Max));
    } else if (key == "smt") {
      spec.threads_per_core =
          static_cast<std::uint32_t>(parse_spec_number(token, value, kU32Max));
    } else if (key == "blocks") {
      spec.blocks =
          static_cast<std::uint32_t>(parse_spec_number(token, value, kU32Max));
    } else if (key == "flavor") {
      if (value == "vanilla") {
        spec.vanilla = true;
      } else if (value == "patched") {
        spec.vanilla = false;
      } else {
        throw InvalidArgument("scenario spec token '" + std::string(token) +
                              "': expected flavor=patched or flavor=vanilla");
      }
    } else if (key == "noise") {
      spec.with_noise = parse_spec_flag(token, value);
    } else if (key == "prios") {
      spec.with_priorities = parse_spec_flag(token, value);
    } else if (key == "cyclic") {
      spec.cyclic_placement = parse_spec_flag(token, value);
    } else if (key == "family") {
      spec.family =
          static_cast<std::uint32_t>(parse_spec_number(token, value, kU32Max));
    } else if (key == "hetero") {
      spec.hetero = parse_spec_flag(token, value);
    } else if (key == "migrate") {
      spec.migrate = parse_spec_flag(token, value);
    } else {
      throw InvalidArgument(
          "scenario spec token '" + std::string(token) + "': unknown key '" +
          std::string(key) +
          "' (known: seed ranks nodes cores smt blocks flavor noise prios "
          "cyclic family hetero migrate)");
    }
  }
  return spec;
}

std::string canonical_spec_string(const ScenarioSpec& spec) {
  return to_string(sanitize_spec(spec));
}

ScenarioSpec random_spec(std::uint64_t seed) {
  // Shape choices come from a stream derived from (seed, salt) so they
  // are decoupled from build_scenario's detail stream: shrinking a shape
  // field never re-rolls another.
  std::uint64_t s = seed ^ 0x5ca1ab1eULL;
  Rng rng(splitmix64(s));
  ScenarioSpec spec;
  spec.seed = seed;
  spec.threads_per_core = rng.chance(0.5) ? 2u : 4u;
  spec.num_cores = static_cast<std::uint32_t>(rng.range(1, 4));
  // Bias towards single-node: that domain feeds two differentials.
  spec.num_nodes =
      rng.chance(0.5) ? 1u : static_cast<std::uint32_t>(rng.range(2, 4));
  const std::uint32_t seats =
      spec.num_nodes * spec.num_cores * spec.threads_per_core;
  spec.num_ranks =
      static_cast<std::uint32_t>(rng.range(2, std::min(seats, 16u)));
  spec.blocks = static_cast<std::uint32_t>(rng.range(1, 5));
  spec.vanilla = rng.chance(0.25);
  spec.with_noise = rng.chance(0.4);
  spec.with_priorities = rng.chance(0.6);
  spec.cyclic_placement = rng.chance(0.5);
  // New dimensions draw *after* every historical one so a given seed's
  // historical shape fields are unchanged by their introduction.
  spec.family = rng.chance(0.55) ? 0u
                                 : static_cast<std::uint32_t>(rng.below(3)) + 1u;
  spec.hetero = spec.num_nodes > 1 && rng.chance(0.35);
  spec.migrate = spec.num_nodes > 1 && rng.chance(0.3);
  return sanitize_spec(spec);
}

ScenarioSpec random_flat_spec(std::uint64_t seed) {
  ScenarioSpec spec = random_spec(seed);
  spec.num_nodes = 1;
  return sanitize_spec(spec);
}

Scenario build_scenario(const ScenarioSpec& raw) {
  const ScenarioSpec spec = sanitize_spec(raw);
  // Independent detail streams, all rooted at spec.seed, one per concern:
  // a shape mutation by the shrinker must not cascade into unrelated
  // re-rolls, so program content, placement and config each fork off a
  // distinct salted seed rather than sharing one sequence.
  std::uint64_t s = spec.seed;
  Rng program_rng(splitmix64(s));
  Rng placement_rng(splitmix64(s));
  Rng config_rng(splitmix64(s));
  // Drawn fourth so pre-hetero streams keep their historical seeds.
  Rng hetero_rng(splitmix64(s));

  Scenario out;

  // --- per-node engine configuration -----------------------------------------
  out.config.chip.num_cores = spec.num_cores;
  out.config.chip.memory.num_cores = spec.num_cores;  // per-core L1Ds
  out.config.chip.core.threads_per_core = spec.threads_per_core;
  // Small sampler windows keep a fuzz iteration cheap (the default
  // 30k/120k windows are calibration-grade; differential equality only
  // needs both sides to see the *same* rates, not converged ones).
  out.config.sampler.warmup_cycles = 500;
  out.config.sampler.window_cycles = 2'000;
  out.config.sampler.seed = config_rng() | 1u;
  out.config.kernel_flavor =
      spec.vanilla ? os::KernelFlavor::kVanilla : os::KernelFlavor::kPatched;
  if (spec.with_noise) {
    out.config.noise = os::NoiseConfig{};  // the full noisy profile
    out.config.noise.seed = config_rng() | 1u;
    out.config.noise_horizon = 0.004 + config_rng.uniform() * 0.016;
  }

  // --- placement --------------------------------------------------------------
  const std::uint32_t contexts = spec.num_cores * spec.threads_per_core;
  if (spec.num_nodes == 1) {
    // Random distinct linear CPUs: exercises non-identity pinnings
    // (core-mates, empty cores) the identity layout never covers.
    std::vector<std::uint32_t> cpus(contexts);
    std::iota(cpus.begin(), cpus.end(), 0u);
    for (std::size_t i = cpus.size() - 1; i > 0; --i) {
      std::swap(cpus[i], cpus[placement_rng.below(i + 1)]);
    }
    cpus.resize(spec.num_ranks);
    out.placement =
        mpisim::Placement::from_linear(cpus, spec.threads_per_core);
    out.cluster_placement = cluster::ClusterPlacement::explicit_map(
        std::vector<std::uint32_t>(spec.num_ranks, 0u), out.placement);
  } else {
    out.cluster_placement =
        spec.cyclic_placement
            ? cluster::ClusterPlacement::cyclic(spec.num_ranks, spec.num_nodes,
                                                spec.threads_per_core)
            : cluster::ClusterPlacement::block(spec.num_ranks, spec.num_nodes,
                                               spec.threads_per_core);
    out.placement = out.cluster_placement.within;
  }

  out.cluster_config.num_nodes = spec.num_nodes;
  out.cluster_config.node = out.config;
  if (spec.num_nodes > 1 && placement_rng.chance(0.5)) {
    out.cluster_config.interconnect.topology = cluster::Topology::kStar;
  }

  // --- heterogeneous node shapes ---------------------------------------------
  if (spec.hetero) {
    // Overrides only ever grow a node's seat capacity (SMT width up to 4,
    // core count up to 4): the block/cyclic placements above were derived
    // from the base shape, and a seat valid on the base chip is valid on
    // any same-or-larger chip. Clock scaling is capacity-neutral.
    out.cluster_config.node_shapes.resize(spec.num_nodes);
    bool any = false;
    for (auto& shape : out.cluster_config.node_shapes) {
      if (hetero_rng.chance(0.4)) {
        shape.threads_per_core = 4;
        any = any || spec.threads_per_core != 4;
      }
      if (hetero_rng.chance(0.4)) {
        shape.num_cores = static_cast<std::uint32_t>(
            hetero_rng.range(spec.num_cores, 4));
        any = any || shape.num_cores != spec.num_cores;
      }
      if (hetero_rng.chance(0.4)) {
        shape.clock_scale = hetero_rng.chance(0.5) ? 0.8 : 1.25;
        any = true;
      }
    }
    if (!any) {  // guarantee the spec's label is honest
      out.cluster_config.node_shapes.back().clock_scale = 1.25;
    }
  }

  // --- application ------------------------------------------------------------
  const std::uint32_t n = spec.num_ranks;
  if (spec.family != 0) {
    out.app = build_family_app(spec, program_rng);
    if (spec.with_priorities) {
      const std::uint64_t lo = 2, hi = spec.vanilla ? 4 : 6;
      out.priorities.reserve(n);
      for (std::uint32_t r = 0; r < n; ++r) {
        out.priorities.push_back(static_cast<int>(program_rng.range(lo, hi)));
      }
    }
    return out;
  }
  out.app.name = "fuzz";
  out.app.ranks.resize(n);
  for (std::uint32_t b = 0; b < spec.blocks; ++b) {
    for (std::uint32_t r = 0; r < n; ++r) {
      out.app.ranks[r].compute(pick_kernel(program_rng),
                               1e5 + program_rng.uniform() * 9e5);
    }
    // Every block ends in one sync construct, identical across ranks
    // (Application::validate requires matching collective sequences).
    switch (program_rng.below(3)) {
      case 0:
        for (auto& rank : out.app.ranks) rank.barrier();
        break;
      case 1: {
        const std::uint64_t bytes = 8 * program_rng.range(1, 512);
        for (auto& rank : out.app.ranks) rank.allreduce(bytes);
        break;
      }
      default: {  // ring exchange: r -> (r + 1) % n, tagged per block
        const std::uint64_t bytes = 8 * program_rng.range(1, 512);
        for (std::uint32_t r = 0; r < n; ++r) {
          out.app.ranks[r]
              .send(RankId{(r + 1) % n}, bytes, static_cast<int>(b))
              .recv(RankId{(r + n - 1) % n}, bytes, static_cast<int>(b))
              .wait_all();
        }
        break;
      }
    }
    // Occasional per-rank local bookkeeping (unequal lengths are the
    // point: they shift every subsequent event time).
    if (program_rng.chance(0.3)) {
      for (auto& rank : out.app.ranks) {
        rank.delay(1e-5 + program_rng.uniform() * 9.9e-4);
      }
    }
  }

  // --- static priorities ------------------------------------------------------
  if (spec.with_priorities) {
    // VERY-LOW (1) is excluded: a starved spin loop can extend runs
    // unboundedly; vanilla stays in the band the unpatched kernel honours.
    const std::uint64_t lo = 2, hi = spec.vanilla ? 4 : 6;
    out.priorities.reserve(n);
    for (std::uint32_t r = 0; r < n; ++r) {
      out.priorities.push_back(static_cast<int>(program_rng.range(lo, hi)));
    }
  }

  return out;
}

}  // namespace smtbal::simcheck
