// Runtime invariant checker for the simulation core.
//
// InvariantObserver plugs into the engine's ObserverBus and, after every
// event, pulls an InvariantAudit snapshot (mpisim/audit.hpp) and asserts
// the relations the event kernel must preserve:
//
//   * time is monotone — the simulation clock never runs backwards, every
//     published timestamp is finite, and no rank state carries a NaN;
//   * decode schedules are lawful — for every core of every node, the
//     schedule the chip model would build from the current effective
//     priorities satisfies an *independent* restatement of the paper's
//     Table II/III rules (check_decode_schedule below). The production
//     rules live in smt/priority.cpp; this file re-derives the expected
//     slice layout from the paper's text on its own, so a regression in
//     either copy makes the two disagree;
//   * collective arrivals are conserved — the arrival counter equals the
//     number of ranks parked at a collective whose release time is still
//     unknown;
//   * trace intervals are well-formed — per rank: positive length,
//     adjacent, non-overlapping, finite;
//   * epochs only move forward, and the run finishes with every rank done.
//
// Optionally the observer also watches a cluster::Interconnect and checks
// that every directed link's busy-until time is non-decreasing.
//
// A violation is recorded (up to Options.max_recorded) and, when
// Options.throw_on_violation is set (the default), raised as a
// SimulationError so a fuzz run fails loudly at the first broken
// invariant.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/interconnect.hpp"
#include "mpisim/audit.hpp"
#include "mpisim/observer.hpp"
#include "smt/priority.hpp"

namespace smtbal::simcheck {

/// Checks `schedule` against an independent restatement of the paper's
/// decode-slicing rules for `priorities` (Table II for pairs above
/// VERY-LOW, Table III for the special levels, the documented weight
/// generalization for N > 2). Returns a description of the first
/// violation, or nullopt when the schedule is lawful. Used both by
/// InvariantObserver (against the production smt::decode_schedule) and by
/// tests that mutate a schedule to prove an injected off-by-one is caught.
[[nodiscard]] std::optional<std::string> check_decode_schedule(
    const smt::DecodeSchedule& schedule,
    std::span<const smt::HwPriority> priorities);

struct InvariantStats {
  std::uint64_t events = 0;      ///< bus notifications audited
  std::uint64_t checks = 0;      ///< individual invariant assertions run
  std::uint64_t violations = 0;  ///< assertions that failed
};

class InvariantObserver final : public mpisim::SimObserver {
 public:
  struct Options {
    /// Raise a SimulationError at the first violation (fuzzing wants the
    /// failure loud and attributable; set false to collect and inspect).
    bool throw_on_violation = true;
    /// Cap on stored violation strings when collecting.
    std::size_t max_recorded = 16;
  };

  InvariantObserver() : InvariantObserver(Options()) {}
  explicit InvariantObserver(Options options) : options_(options) {}

  /// Additionally asserts per-link busy-until monotonicity on `inter`
  /// after every event (non-owning; must outlive the run; nullptr
  /// detaches).
  void watch_interconnect(const cluster::Interconnect* inter);

  // --- SimObserver -----------------------------------------------------------
  void on_bind(const mpisim::AuditSource* audit) override;
  void on_start(std::size_t num_ranks) override;
  void on_event(const mpisim::Event& event) override;
  void on_interval(RankId rank, SimTime begin, SimTime end,
                   trace::RankState state) override;
  void on_priority_change(RankId rank, int from, int to, SimTime now) override;
  void on_epoch(const mpisim::EpochReport& report) override;
  void on_finish(SimTime end_time) override;

  [[nodiscard]] const InvariantStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }

 private:
  /// Records (and, in strict mode, throws) a violation.
  void fail(std::string message);
  /// One assertion: counts it, and fails with `message` when not `ok`.
  void expect(bool ok, const std::string& message);
  /// Pulls a snapshot and runs the full battery.
  void audit_now(const mpisim::Event* event);
  void check_ranks(const mpisim::InvariantAudit& audit);
  void check_decode(const mpisim::InvariantAudit& audit);
  void check_interconnect();

  Options options_;
  const mpisim::AuditSource* source_ = nullptr;
  const cluster::Interconnect* interconnect_ = nullptr;
  mpisim::InvariantAudit audit_;  ///< reused snapshot buffer
  std::vector<smt::HwPriority> decode_buf_;  ///< chip view of priorities
  InvariantStats stats_;
  std::vector<std::string> violations_;
  SimTime last_now_ = 0.0;
  int last_epoch_ = 0;
  std::size_t num_ranks_ = 0;
  std::vector<SimTime> interval_end_;   ///< per rank: end of last interval
  std::vector<SimTime> link_busy_;      ///< previous interconnect snapshot
  bool finished_ = false;
};

}  // namespace smtbal::simcheck
