#include "simcheck/differ.hpp"

#include <exception>
#include <iomanip>
#include <optional>
#include <sstream>
#include <type_traits>
#include <vector>

#include "core/static_policy.hpp"
#include "policy/registry.hpp"
#include "policy/repartition.hpp"
#include "simcheck/invariants.hpp"

namespace smtbal::simcheck {

namespace {

/// Prints a double with enough digits to round-trip, so a divergence
/// message pins down the exact bits that differ.
std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

/// Appends "<what>: <a> vs <b>" to `out` on inequality. Exact equality
/// on doubles is intentional: see the header.
template <typename T>
bool same(std::optional<std::string>& out, const std::string& what, const T& a,
          const T& b) {
  if (a == b) return true;
  if (!out) {
    std::ostringstream os;
    if constexpr (std::is_floating_point_v<T>) {
      os << what << ": " << fmt(a) << " vs " << fmt(b);
    } else {
      os << what << ": " << a << " vs " << b;
    }
    out = os.str();
  }
  return false;
}

std::optional<std::string> diff_traces(const trace::Tracer& a,
                                       const trace::Tracer& b) {
  std::optional<std::string> out;
  if (!same(out, "trace.num_ranks", a.num_ranks(), b.num_ranks())) return out;
  if (!same(out, "trace.end_time", a.end_time(), b.end_time())) return out;
  for (std::size_t r = 0; r < a.num_ranks(); ++r) {
    const auto& ta = a.timeline(RankId{static_cast<std::uint32_t>(r)});
    const auto& tb = b.timeline(RankId{static_cast<std::uint32_t>(r)});
    if (!same(out, "rank " + std::to_string(r) + " interval count", ta.size(),
              tb.size())) {
      return out;
    }
    for (std::size_t i = 0; i < ta.size(); ++i) {
      const std::string at =
          "rank " + std::to_string(r) + " interval " + std::to_string(i);
      if (!same(out, at + " begin", ta[i].begin, tb[i].begin)) return out;
      if (!same(out, at + " end", ta[i].end, tb[i].end)) return out;
      if (!same(out, at + " state", static_cast<int>(ta[i].state),
                static_cast<int>(tb[i].state))) {
        return out;
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> diff_metrics(const mpisim::MetricsReport& a,
                                        const mpisim::MetricsReport& b) {
  std::optional<std::string> out;
  if (!same(out, "metrics.ranks size", a.ranks.size(), b.ranks.size())) {
    return out;
  }
  if (!same(out, "metrics.epochs", a.epochs, b.epochs)) return out;
  for (std::size_t k = 0; k < a.events_by_kind.size(); ++k) {
    if (!same(out, "events_by_kind[" + std::to_string(k) + "]",
              a.events_by_kind[k], b.events_by_kind[k])) {
      return out;
    }
  }
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const std::string at = "metrics rank " + std::to_string(r) + " ";
    const auto& ma = a.ranks[r];
    const auto& mb = b.ranks[r];
    if (!same(out, at + "compute", ma.compute, mb.compute)) return out;
    if (!same(out, at + "wait", ma.wait, mb.wait)) return out;
    if (!same(out, at + "spin", ma.spin, mb.spin)) return out;
    if (!same(out, at + "preempted", ma.preempted, mb.preempted)) return out;
    if (!same(out, at + "priority_changes", ma.priority_changes,
              mb.priority_changes)) {
      return out;
    }
    for (std::size_t bkt = 0; bkt < mpisim::DurationHistogram::kBuckets;
         ++bkt) {
      if (!same(out, at + "compute histogram bucket " + std::to_string(bkt),
                ma.compute_intervals.counts[bkt],
                mb.compute_intervals.counts[bkt])) {
        return out;
      }
      if (!same(out, at + "wait histogram bucket " + std::to_string(bkt),
                ma.wait_intervals.counts[bkt],
                mb.wait_intervals.counts[bkt])) {
        return out;
      }
    }
  }
  return std::nullopt;
}

/// Core comparison shared by both differentials: RunResult, OracleResult
/// and ClusterRunResult::flat all expose this field set.
template <typename L, typename R>
std::optional<std::string> diff_common(const L& a, const R& b) {
  std::optional<std::string> out;
  if (!same(out, "exec_time", a.exec_time, b.exec_time)) return out;
  if (!same(out, "events", a.events, b.events)) return out;
  if (!same(out, "imbalance", a.imbalance, b.imbalance)) return out;
  if (!same(out, "priority_resets", a.priority_resets, b.priority_resets)) {
    return out;
  }
  if (auto d = diff_traces(a.trace, b.trace)) return d;
  return diff_metrics(a.metrics, b.metrics);
}

}  // namespace

std::optional<std::string> diff_engine_vs_oracle(
    const mpisim::RunResult& engine, const OracleResult& oracle) {
  return diff_common(engine, oracle);
}

std::optional<std::string> diff_flat_vs_cluster(
    const mpisim::RunResult& flat, const cluster::ClusterRunResult& clustered) {
  return diff_common(flat, clustered.flat);
}

std::optional<std::string> check_spec(const ScenarioSpec& raw) {
  const ScenarioSpec spec = sanitize_spec(raw);
  try {
    const Scenario sc = build_scenario(spec);

    if (spec.num_nodes == 1) {
      mpisim::Engine engine(sc.app, sc.placement, sc.config);
      InvariantObserver invariants;
      engine.add_observer(&invariants);
      std::optional<core::StaticPriorityPolicy> policy;
      if (!sc.priorities.empty()) {
        policy.emplace(sc.priorities);
        engine.set_policy(&*policy);
      }
      const mpisim::RunResult engine_result = engine.run();

      const OracleResult oracle =
          oracle_run(sc.app, sc.placement, sc.config, sc.priorities);
      if (auto d = diff_engine_vs_oracle(engine_result, oracle)) {
        return "engine-vs-oracle: " + *d;
      }

      // The same scenario through a one-node cluster must retrace the
      // flat run bit-for-bit.
      cluster::ClusterEngine clustered(sc.app, sc.cluster_placement,
                                       sc.cluster_config);
      InvariantObserver cluster_invariants;
      cluster_invariants.watch_interconnect(&clustered.interconnect());
      clustered.add_observer(&cluster_invariants);
      std::optional<core::StaticPriorityPolicy> cluster_policy;
      if (!sc.priorities.empty()) {
        cluster_policy.emplace(sc.priorities);
        clustered.set_policy(&*cluster_policy);
      }
      const cluster::ClusterRunResult cluster_result = clustered.run();
      if (auto d = diff_flat_vs_cluster(engine_result, cluster_result)) {
        return "flat-vs-cluster(M=1): " + *d;
      }
    } else {
      cluster::ClusterEngine clustered(sc.app, sc.cluster_placement,
                                       sc.cluster_config);
      InvariantObserver invariants;
      invariants.watch_interconnect(&clustered.interconnect());
      clustered.add_observer(&invariants);
      std::optional<core::StaticPriorityPolicy> static_policy;
      std::optional<smtbal::policy::RepartitionPolicy> repartition;
      if (spec.migrate) {
        // Hair-trigger repartitioning so the invariant checker sees
        // actual cross-node migrations (the sanitized spec guarantees
        // free seats). Vanilla kernels only accept priorities 2..4, so
        // the inner controller is banded down to match.
        smtbal::policy::RepartitionConfig config;
        config.threshold = 0.05;
        config.hysteresis = 0.05;
        config.interval = 1;
        config.warmup_epochs = 0;
        if (spec.vanilla) {
          config.inner.high_priority = 4;
          config.inner.max_diff = 1;
        }
        repartition.emplace(config);
        clustered.set_policy(&*repartition);
      } else if (!sc.priorities.empty()) {
        static_policy.emplace(sc.priorities);
        clustered.set_policy(&*static_policy);
      }
      (void)clustered.run();
    }
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  }
  return std::nullopt;
}

std::optional<std::string> check_policy_spec(const ScenarioSpec& raw,
                                             const std::string& policy_spec) {
  ScenarioSpec spec = sanitize_spec(raw);
  spec.vanilla = false;
  try {
    const Scenario sc = build_scenario(spec);
    const auto make_policy = [&](bool clustered) {
      policy::PolicyContext context;
      context.num_ranks = sc.app.size();
      context.threads_per_core = sc.config.chip.threads_per_core();
      context.placement =
          clustered ? &sc.cluster_placement.within : &sc.placement;
      context.cluster = clustered ? &sc.cluster_placement : nullptr;
      return policy::Registry::instance().make(policy_spec, context);
    };

    if (spec.num_nodes == 1) {
      mpisim::Engine engine(sc.app, sc.placement, sc.config);
      InvariantObserver invariants;
      engine.add_observer(&invariants);
      const auto flat_policy = make_policy(false);
      engine.set_policy(flat_policy.get());
      const mpisim::RunResult flat = engine.run();

      cluster::ClusterEngine clustered(sc.app, sc.cluster_placement,
                                       sc.cluster_config);
      InvariantObserver cluster_invariants;
      cluster_invariants.watch_interconnect(&clustered.interconnect());
      clustered.add_observer(&cluster_invariants);
      const auto cluster_policy = make_policy(true);
      clustered.set_policy(cluster_policy.get());
      const cluster::ClusterRunResult cluster_result = clustered.run();
      if (auto d = diff_flat_vs_cluster(flat, cluster_result)) {
        return "flat-vs-cluster(M=1) under '" + policy_spec + "': " + *d;
      }
    } else {
      cluster::ClusterEngine clustered(sc.app, sc.cluster_placement,
                                       sc.cluster_config);
      InvariantObserver invariants;
      invariants.watch_interconnect(&clustered.interconnect());
      clustered.add_observer(&invariants);
      const auto cluster_policy = make_policy(true);
      clustered.set_policy(cluster_policy.get());
      (void)clustered.run();
    }
  } catch (const std::exception& e) {
    return "policy '" + policy_spec + "': exception: " + e.what();
  }
  return std::nullopt;
}

ScenarioSpec shrink_spec(
    ScenarioSpec spec,
    const std::function<bool(const ScenarioSpec&)>& still_fails,
    std::size_t max_attempts) {
  spec = sanitize_spec(spec);
  std::size_t attempts = 0;

  // Shape reducers, biggest savings first. Out-of-range results are
  // healed by sanitize_spec; no-op mutations are skipped via equality.
  using Mutator = void (*)(ScenarioSpec&);
  static constexpr Mutator kMutators[] = {
      [](ScenarioSpec& s) { s.migrate = false; },
      [](ScenarioSpec& s) { s.hetero = false; },
      [](ScenarioSpec& s) { s.family = 0; },
      [](ScenarioSpec& s) { s.num_nodes = 1; },
      [](ScenarioSpec& s) { --s.num_nodes; },
      [](ScenarioSpec& s) { s.num_ranks = 2; },
      [](ScenarioSpec& s) { s.num_ranks /= 2; },
      [](ScenarioSpec& s) { --s.num_ranks; },
      [](ScenarioSpec& s) { s.blocks = 1; },
      [](ScenarioSpec& s) { --s.blocks; },
      [](ScenarioSpec& s) { s.with_noise = false; },
      [](ScenarioSpec& s) { s.with_priorities = false; },
      [](ScenarioSpec& s) { s.cyclic_placement = false; },
      [](ScenarioSpec& s) { s.vanilla = false; },
      [](ScenarioSpec& s) { s.threads_per_core = 2; },
      [](ScenarioSpec& s) { s.num_cores = 1; },
      [](ScenarioSpec& s) { --s.num_cores; },
  };

  bool progress = true;
  while (progress && attempts < max_attempts) {
    progress = false;
    for (const Mutator mutate : kMutators) {
      if (attempts >= max_attempts) break;
      ScenarioSpec candidate = spec;
      mutate(candidate);
      candidate = sanitize_spec(candidate);
      if (candidate == spec) continue;
      ++attempts;
      if (still_fails(candidate)) {
        spec = candidate;
        progress = true;
      }
    }
  }
  return spec;
}

}  // namespace smtbal::simcheck
