// Balancing-policy hook interface: the observe → decide → actuate
// contract between the engines and the policy layer (src/policy/).
//
// The engine exposes two integration points to a policy:
//   * on_start  — before the first phase executes (set initial priorities;
//                 the paper's static approach lives entirely here)
//   * on_epoch  — every time all ranks have completed one more global
//                 synchronisation epoch (barrier or waitall), with the
//                 per-rank observations of the epoch (compute/wait times,
//                 issued instructions, IPC, decode share, priority,
//                 placement). This is where dynamic policies react.
//
// Since the event-kernel refactor, policies are dispatched through the
// simulation's observer bus (observer.hpp): the engine wraps the installed
// policy in a PolicyObserver, so on_epoch is just one more bus
// notification — alongside tracing and metrics — rather than a bespoke
// callback wired into the simulation core.
//
// The actuation surface has three knobs, all applied at epoch boundaries:
//   * priorities — set_rank_priority goes through the kernel interfaces
//     (the patched kernel's /proc/<pid>/hmt_priority file, or the or-nop
//     instructions on a vanilla kernel), exactly as a userspace balancer
//     on the paper's machine would;
//   * placement moves — move_rank / swap_ranks remap ranks to other
//     (core, slot) seats on their node, the OS migrating the pinned
//     process and the engine invalidating its sampler/prediction state
//     the same way it does for priority changes;
//   * per-node budgets — install_budgets / transfer_budget cap the sum of
//     priority levels per node and shift headroom between nodes, the
//     analogue of redistributing a per-node power budget (arXiv
//     1410.6824).
// The widened calls are virtual with throwing/neutral defaults so narrow
// control adapters (e.g. the two-level balancer's per-node view) keep
// compiling; both engines override the full surface.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "os/kernel.hpp"
#include "smt/priority.hpp"

namespace smtbal::cluster {
class CommGraph;
}  // namespace smtbal::cluster

namespace smtbal::mpisim {

struct Placement;

/// Per-rank observations of one epoch. The time fields are the epoch's
/// accumulations; ipc/decode_share/priority/cpu are snapshots at the
/// epoch boundary.
struct RankEpochStats {
  SimTime compute = 0.0;  ///< time spent computing during the epoch
  SimTime wait = 0.0;     ///< time spent blocked in MPI during the epoch
  /// Instructions issued during the epoch (the compute-integration area:
  /// rate x time summed over the epoch's segments).
  double issued = 0.0;
  /// The rank's sampled IPC on its current context — the ILP proxy the
  /// ThroughputSampler measures (0 before the first sample).
  double ipc = 0.0;
  /// The rank's share of its core's total instruction throughput, in
  /// [0, 1] (0 before the first sample or when the core is idle).
  double decode_share = 0.0;
  /// Effective hardware priority level at the epoch boundary (0 = OFF,
  /// i.e. the rank already exited).
  int priority = 0;
  /// The rank's (core, slot) seat at the epoch boundary.
  CpuId cpu{};
};

struct EpochReport {
  int epoch = 0;         ///< 1-based count of completed epochs
  SimTime now = 0.0;     ///< simulation time at the epoch boundary
  std::vector<RankEpochStats> ranks;
};

/// node_budget() value when install_budgets() has not been called: the
/// per-node priority-weight sum is uncapped.
inline constexpr int kUnlimitedBudget = -1;

/// The engine-side control surface offered to policies.
class EngineControl {
 public:
  virtual ~EngineControl() = default;

  /// Sets a rank's hardware priority through the kernel interface.
  /// Throws InvalidArgument if the kernel refuses (vanilla kernel,
  /// out-of-range value), the rank id is out of range, or the change
  /// would push the hosting node's priority-level sum over its installed
  /// budget.
  virtual void set_rank_priority(RankId rank, int priority) = 0;

  /// The rank's current effective hardware priority. Throws
  /// InvalidArgument (naming the rank and the valid range) when the rank
  /// id is out of range.
  [[nodiscard]] virtual int rank_priority(RankId rank) const = 0;

  [[nodiscard]] virtual const Placement& placement() const = 0;
  [[nodiscard]] virtual std::size_t num_ranks() const = 0;
  [[nodiscard]] virtual os::KernelModel& kernel() = 0;

  // --- widened actuation surface (defaults keep narrow adapters valid) ------

  /// SMT contexts per core of the reference chip — node 0's shape on a
  /// heterogeneous cluster. Seat-aware policies should prefer the
  /// per-node accessors below.
  [[nodiscard]] virtual std::uint32_t threads_per_core() const { return 2; }

  /// Number of cluster nodes behind this control (1 for the flat engine).
  [[nodiscard]] virtual std::uint32_t num_nodes() const { return 1; }

  /// SMT contexts per core of `node`'s chip. Nodes may differ (mixed-width
  /// clusters); the default assumes the uniform shape. Throws
  /// InvalidArgument on an out-of-range node id.
  [[nodiscard]] virtual std::uint32_t threads_per_core_of(
      std::uint32_t node) const {
    if (node >= num_nodes()) {
      throw InvalidArgument("threads_per_core_of: node " +
                            std::to_string(node) + " out of range [0, " +
                            std::to_string(num_nodes()) + ")");
    }
    return threads_per_core();
  }

  /// Number of cores on `node`'s chip. The default derives the uniform
  /// shape from the kernel's CPU count. Throws InvalidArgument on an
  /// out-of-range node id.
  [[nodiscard]] virtual std::uint32_t num_cores_of(std::uint32_t node) {
    if (node >= num_nodes()) {
      throw InvalidArgument("num_cores_of: node " + std::to_string(node) +
                            " out of range [0, " + std::to_string(num_nodes()) +
                            ")");
    }
    return kernel().num_cpus() / threads_per_core();
  }

  /// The node hosting `rank`. Throws InvalidArgument on an out-of-range
  /// rank id.
  [[nodiscard]] virtual std::uint32_t node_of(RankId rank) const {
    if (rank.value() >= num_ranks()) {
      throw InvalidArgument("node_of: rank " + std::to_string(rank.value()) +
                            " out of range [0, " + std::to_string(num_ranks()) +
                            ")");
    }
    return 0;
  }

  /// Remaps `rank` to the free seat `to` on its current node (the OS
  /// migrates the pinned process; its priority travels with it). Throws
  /// InvalidArgument on an out-of-range rank or seat, or when the target
  /// seat already hosts a process. A rank that already exited is ignored.
  virtual void move_rank(RankId rank, CpuId to) {
    (void)rank, (void)to;
    throw InvalidArgument("move_rank: this control surface does not support "
                          "placement moves");
  }

  /// Exchanges the seats of two ranks on the same node (priorities travel
  /// with the processes). Throws InvalidArgument on out-of-range ranks or
  /// a cross-node pair; a pair with an exited member is ignored.
  virtual void swap_ranks(RankId a, RankId b) {
    (void)a, (void)b;
    throw InvalidArgument("swap_ranks: this control surface does not support "
                          "placement moves");
  }

  /// Migrates `rank` to the free seat `to` on `node`, handing its process
  /// over between the node kernels (the priority travels by rewrite) and
  /// pricing the resident-state transfer onto the interconnect — the rank
  /// stalls until the state lands. Same-node targets degrade to
  /// move_rank. Throws InvalidArgument on an out-of-range rank, node or
  /// seat, or when the target seat already hosts a process; a rank that
  /// already exited is ignored.
  virtual void migrate_rank(RankId rank, std::uint32_t node, CpuId to) {
    (void)rank, (void)node, (void)to;
    throw InvalidArgument("migrate_rank: this control surface does not "
                          "support cross-node migration");
  }

  /// The accumulated rank-to-rank message-traffic graph of the run so
  /// far, or nullptr when the engine does not track one (flat engine,
  /// narrow adapters). Never owning; valid until the run ends.
  [[nodiscard]] virtual const cluster::CommGraph* comm_graph() const {
    return nullptr;
  }

  /// Caps every node's priority-level sum at `per_node_budget` (the same
  /// cap on each node; transfer_budget shifts headroom afterwards).
  /// Throws InvalidArgument when any node's current sum already exceeds
  /// the cap, naming the node and its sum.
  virtual void install_budgets(int per_node_budget) {
    (void)per_node_budget;
    throw InvalidArgument("install_budgets: this control surface does not "
                          "support per-node budgets");
  }

  /// Moves `amount` units of budget from node `from` to node `to`. The
  /// total across nodes is conserved by construction. Throws
  /// InvalidArgument when budgets are not installed, a node id is out of
  /// range, or the donor would drop below its current priority sum.
  virtual void transfer_budget(std::uint32_t from, std::uint32_t to,
                               int amount) {
    (void)from, (void)to, (void)amount;
    throw InvalidArgument("transfer_budget: this control surface does not "
                          "support per-node budgets");
  }

  /// The node's current budget, or kUnlimitedBudget when none is
  /// installed. Throws InvalidArgument on an out-of-range node id.
  [[nodiscard]] virtual int node_budget(std::uint32_t node) const {
    if (node >= num_nodes()) {
      throw InvalidArgument("node_budget: node " + std::to_string(node) +
                            " out of range [0, " + std::to_string(num_nodes()) +
                            ")");
    }
    return kUnlimitedBudget;
  }
};

/// Sum of the effective priority levels of `node`'s still-running ranks —
/// the quantity install_budgets() caps.
[[nodiscard]] int node_priority_sum(const EngineControl& control,
                                    std::uint32_t node);

class BalancePolicy {
 public:
  virtual ~BalancePolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  virtual void on_start(EngineControl& control) { (void)control; }
  virtual void on_epoch(EngineControl& control, const EpochReport& report) {
    (void)control;
    (void)report;
  }
};

}  // namespace smtbal::mpisim
