// Balancing-policy hook interface.
//
// The engine exposes two integration points to a policy:
//   * on_start  — before the first phase executes (set initial priorities;
//                 the paper's static approach lives entirely here)
//   * on_epoch  — every time all ranks have completed one more global
//                 synchronisation epoch (barrier or waitall), with the
//                 per-rank compute/wait times of the epoch. This is where
//                 the dynamic balancer (the paper's proposed future work,
//                 implemented in src/core) reacts.
//
// Since the event-kernel refactor, policies are dispatched through the
// simulation's observer bus (observer.hpp): the engine wraps the installed
// policy in a PolicyObserver, so on_epoch is just one more bus
// notification — alongside tracing and metrics — rather than a bespoke
// callback wired into the simulation core.
//
// Policies change priorities exclusively through the patched kernel's
// /proc/<pid>/hmt_priority interface, exactly as a userspace balancer on
// the paper's machine would.
#pragma once

#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "os/kernel.hpp"
#include "smt/priority.hpp"

namespace smtbal::mpisim {

struct Placement;

struct RankEpochStats {
  SimTime compute = 0.0;  ///< time spent computing during the epoch
  SimTime wait = 0.0;     ///< time spent blocked in MPI during the epoch
};

struct EpochReport {
  int epoch = 0;         ///< 1-based count of completed epochs
  SimTime now = 0.0;     ///< simulation time at the epoch boundary
  std::vector<RankEpochStats> ranks;
};

/// The engine-side control surface offered to policies.
class EngineControl {
 public:
  virtual ~EngineControl() = default;

  /// Sets a rank's hardware priority through the kernel interface.
  /// Throws if the kernel refuses (vanilla kernel, out-of-range value).
  virtual void set_rank_priority(RankId rank, int priority) = 0;

  /// The rank's current effective hardware priority.
  [[nodiscard]] virtual int rank_priority(RankId rank) const = 0;

  [[nodiscard]] virtual const Placement& placement() const = 0;
  [[nodiscard]] virtual std::size_t num_ranks() const = 0;
  [[nodiscard]] virtual os::KernelModel& kernel() = 0;
};

class BalancePolicy {
 public:
  virtual ~BalancePolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  virtual void on_start(EngineControl& control) { (void)control; }
  virtual void on_epoch(EngineControl& control, const EpochReport& report) {
    (void)control;
    (void)report;
  }
};

}  // namespace smtbal::mpisim
