// Discrete-event MPI application engine, co-simulated with the SMT chip.
//
// The engine advances a set of rank programs through piecewise-constant-
// rate integration: whenever any context's (kernel, priority) pair
// changes — a rank blocks in MPI, a priority is rewritten, a noise event
// preempts a CPU — the per-context instruction rates are re-derived from
// the cycle-level chip model via the memoising ThroughputSampler, and the
// next event time is computed analytically. A blocked rank busy-waits
// (MPICH's progress loop), so it keeps occupying its SMT context with the
// spin kernel — the very reason hardware priorities help.
//
// Internally the engine is an event kernel (event_queue.hpp): completions
// are predicted into a binary-heap queue and popped in O(log ranks)
// instead of rescanning every rank per step, with stale predictions
// invalidated lazily by generation counters. Everything that happens is
// published on an ObserverBus (observer.hpp): tracing, metrics and
// balance-policy dispatch are observers, and callers can attach their own
// via add_observer().
#pragma once

#include <memory>
#include <string>

#include "common/types.hpp"
#include "mpisim/hooks.hpp"
#include "mpisim/metrics.hpp"
#include "mpisim/network.hpp"
#include "mpisim/observer.hpp"
#include "mpisim/phase.hpp"
#include "os/kernel.hpp"
#include "os/noise.hpp"
#include "smt/sampler.hpp"
#include "trace/tracer.hpp"

namespace smtbal::mpisim {

namespace detail {
class Sim;
}  // namespace detail

struct EngineConfig {
  smt::ChipConfig chip;
  smt::ThroughputSampler::Options sampler{};
  os::KernelFlavor kernel_flavor = os::KernelFlavor::kPatched;
  NetworkConfig network{};
  /// OS noise injection; silent by default (the paper's tables measure
  /// intrinsic imbalance). Set noise_horizon > 0 to enable.
  os::NoiseConfig noise = os::NoiseConfig::silent();
  SimTime noise_horizon = 0.0;
  /// Collective release cost after the last rank arrives.
  SimTime barrier_latency = 2e-6;
  /// Kernel a blocked rank runs in its busy-wait loop.
  std::string spin_kernel = std::string(isa::kKernelSpinWait);
  /// Runaway guards.
  SimTime max_sim_time = 1e6;
  std::uint64_t max_events = 10'000'000;

  /// Structural sanity checks on the configuration itself: positive
  /// runaway guards, finite non-negative latencies, a registered spin
  /// kernel, a chip the sampler can model. Throws InvalidArgument with a
  /// message naming the offending field.
  void validate() const;
};

/// The outcome of one engine run. Move-only: it carries the full trace
/// (potentially millions of intervals), so aggregation layers hand it
/// around by move instead of copying.
struct RunResult {
  trace::Tracer trace{};
  SimTime exec_time = 0.0;
  double imbalance = 0.0;
  std::uint64_t events = 0;
  std::uint64_t priority_resets = 0;
  smt::SamplerStats sampler_stats;
  MetricsReport metrics;

  RunResult() = default;
  RunResult(RunResult&&) = default;
  RunResult& operator=(RunResult&&) = default;
  RunResult(const RunResult&) = delete;
  RunResult& operator=(const RunResult&) = delete;
};

class Engine final : public EngineControl {
 public:
  /// Builds an engine with its own sampler.
  Engine(Application app, Placement placement, EngineConfig config = {});

  /// Builds an engine sharing a sampler with other runs of the same chip
  /// configuration (keeps the cycle-level memoisation warm across cases).
  Engine(Application app, Placement placement, EngineConfig config,
         std::shared_ptr<smt::ThroughputSampler> sampler);

  /// Installs a balancing policy (non-owning; must outlive run()).
  void set_policy(BalancePolicy* policy) { policy_ = policy; }

  /// Attaches an additional observer to the run's bus (non-owning; must
  /// outlive run()). Must be called before run().
  void add_observer(SimObserver* observer);

  /// Runs the application to completion and returns the trace + metrics.
  /// May be called once per Engine.
  RunResult run();

  // --- EngineControl --------------------------------------------------------
  void set_rank_priority(RankId rank, int priority) override;
  [[nodiscard]] int rank_priority(RankId rank) const override;
  [[nodiscard]] const Placement& placement() const override { return placement_; }
  [[nodiscard]] std::size_t num_ranks() const override { return app_.size(); }
  [[nodiscard]] os::KernelModel& kernel() override { return kernel_; }
  [[nodiscard]] std::uint32_t threads_per_core() const override {
    return config_.chip.threads_per_core();
  }
  [[nodiscard]] std::uint32_t threads_per_core_of(
      std::uint32_t node) const override {
    if (node >= 1) {
      throw InvalidArgument("threads_per_core_of: node " +
                            std::to_string(node) + " out of range [0, 1)");
    }
    return config_.chip.threads_per_core();
  }
  [[nodiscard]] std::uint32_t num_cores_of(std::uint32_t node) override {
    if (node >= 1) {
      throw InvalidArgument("num_cores_of: node " + std::to_string(node) +
                            " out of range [0, 1)");
    }
    return config_.chip.num_cores;
  }
  void move_rank(RankId rank, CpuId to) override;
  void swap_ranks(RankId a, RankId b) override;
  /// One node: node 0 degrades to move_rank, anything else throws — so a
  /// migration-aware policy behaves identically on the flat engine and on
  /// an M=1 cluster.
  void migrate_rank(RankId rank, std::uint32_t node, CpuId to) override;
  void install_budgets(int per_node_budget) override;
  void transfer_budget(std::uint32_t from, std::uint32_t to,
                       int amount) override;
  [[nodiscard]] int node_budget(std::uint32_t node) const override;

 private:
  /// Throws a value-bearing InvalidArgument unless `rank` is in range.
  void check_rank(RankId rank, const char* who) const;
  /// Sum of effective priority levels over the engaged contexts (the
  /// quantity an installed budget caps).
  [[nodiscard]] int priority_sum() const;
  Application app_;
  Placement placement_;
  EngineConfig config_;
  std::shared_ptr<smt::ThroughputSampler> sampler_;
  os::KernelModel kernel_;
  BalancePolicy* policy_ = nullptr;
  std::vector<SimObserver*> observers_;
  std::vector<Pid> pid_of_rank_;
  /// Per-node priority-weight budgets; empty until install_budgets() (the
  /// flat engine is one node, so this holds at most one entry).
  std::vector<int> budgets_;
  bool ran_ = false;
  /// Set while run() is live so set_rank_priority can notify the bus with
  /// the current simulation time and invalidate cached rates.
  detail::Sim* sim_ = nullptr;
  ObserverBus* active_bus_ = nullptr;
};

}  // namespace smtbal::mpisim
