// Binary-heap event queue with deterministic (time, seq) tie-breaking.
//
// std::priority_queue is not used because its ordering of equal elements
// is unspecified across implementations; simultaneous events here pop in
// exact insertion order, which the engine's reproducibility guarantee
// (bit-identical runs for identical inputs) depends on.
//
// Storage is data-oriented: the heap itself holds only the 24-byte
// (time, seq, slot) handles the comparator touches, while the cold event
// body (kind, subject, generation, MsgPayload) lives out-of-line in an
// arena indexed by `slot`. Sift operations therefore move half the bytes
// of a full Event, and popped slots recycle through a free list so the
// arena footprint is bounded by the peak queue depth, not by the total
// number of events ever pushed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mpisim/event.hpp"

namespace smtbal::mpisim {

class EventQueue {
 public:
  /// Schedules an event; returns the sequence number assigned to it.
  std::uint64_t push(SimTime time, EventKind kind, std::uint32_t subject = 0,
                     std::uint64_t generation = 0, MsgPayload msg = {});

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// The earliest event. Precondition: !empty() — checked (SMTBAL_DCHECK)
  /// in debug builds, undefined behaviour in release builds.
  [[nodiscard]] const Event& top() const;

  /// Removes and returns the earliest event. Throws when empty.
  Event pop();

  /// Total events ever pushed (also the next sequence number).
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

  /// Arena slots currently allocated (peak simultaneous queue depth);
  /// exposed so tests can assert that the free list actually recycles.
  [[nodiscard]] std::size_t arena_slots() const { return arena_.size(); }

 private:
  /// What the heap orders: the comparator key plus the arena slot of the
  /// event body. Kept POD-small so sift swaps stay cheap.
  struct Handle {
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  /// The part of an Event the comparator never reads, stored out-of-line.
  struct Body {
    EventKind kind = EventKind::kComputeDone;
    std::uint32_t subject = 0;
    std::uint64_t generation = 0;
    MsgPayload msg{};
  };

  static bool before(const Handle& a, const Handle& b);
  void sift_up(std::size_t index);
  void sift_down(std::size_t index);
  [[nodiscard]] Event materialize(const Handle& handle) const;

  std::vector<Handle> heap_;
  std::vector<Body> arena_;
  std::vector<std::uint32_t> free_;  ///< recycled arena slots (LIFO)
  std::uint64_t next_seq_ = 0;
  mutable Event top_scratch_{};  ///< backing storage for top()'s reference
};

}  // namespace smtbal::mpisim
