// Binary-heap event queue with deterministic (time, seq) tie-breaking.
//
// std::priority_queue is not used because its ordering of equal elements
// is unspecified across implementations; simultaneous events here pop in
// exact insertion order, which the engine's reproducibility guarantee
// (bit-identical runs for identical inputs) depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mpisim/event.hpp"

namespace smtbal::mpisim {

class EventQueue {
 public:
  /// Schedules an event; returns the sequence number assigned to it.
  std::uint64_t push(SimTime time, EventKind kind, std::uint32_t subject = 0,
                     std::uint64_t generation = 0, MsgPayload msg = {});

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// The earliest event; undefined when empty().
  [[nodiscard]] const Event& top() const { return heap_.front(); }

  /// Removes and returns the earliest event. Throws when empty.
  Event pop();

  /// Total events ever pushed (also the next sequence number).
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

 private:
  static bool before(const Event& a, const Event& b);
  void sift_up(std::size_t index);
  void sift_down(std::size_t index);

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace smtbal::mpisim
