#include "mpisim/collectives.hpp"

namespace smtbal::mpisim {

void Collectives::release_due(SimTime now, SimTime eps,
                              std::span<const RunState> states,
                              std::span<const SimTime> ready_at,
                              CollectiveClient& client) {
  // Snapshot the releasable ranks first, then complete them (a completion
  // may invalidate a queued entry — e.g. advance the rank to the next
  // collective — so re-check at pop time).
  for (std::size_t r = 0; r < states.size(); ++r) {
    if (states[r] == RunState::kAtBarrier && ready_at[r] <= now + eps) {
      release_queue_.push_back(r);
    }
  }
  if (releasing_) return;  // the outermost release_due drains
  releasing_ = true;
  for (std::size_t i = 0; i < release_queue_.size(); ++i) {
    const std::size_t r = release_queue_[i];
    if (states[r] == RunState::kAtBarrier && ready_at[r] <= now + eps) {
      client.release_rank(r);
    }
  }
  release_queue_.clear();
  releasing_ = false;
}

void Collectives::post_send(std::uint32_t src, std::uint32_t dst, int tag,
                            SimTime arrival) {
  messages_[std::tuple{src, dst, tag}].push_back(arrival);
}

bool Collectives::match_all(std::uint32_t rank, std::vector<RecvReq>& posted,
                            SimTime& max_arrival) {
  max_arrival = 0.0;
  bool all = true;
  for (RecvReq& req : posted) {
    if (!req.matched) {
      const auto key = std::tuple{req.peer, rank, req.tag};
      auto it = messages_.find(key);
      if (it != messages_.end() && !it->second.empty()) {
        req.matched = true;
        req.arrival = it->second.front();
        it->second.pop_front();
      }
    }
    if (req.matched) {
      max_arrival = std::max(max_arrival, req.arrival);
    } else {
      all = false;
    }
  }
  return all;
}

}  // namespace smtbal::mpisim
