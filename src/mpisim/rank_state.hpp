// Per-rank runtime state machine of the discrete-event engine.
//
// A rank is always in exactly one RunState; the engine advances it through
// its program's phases, and RankRt carries everything the transition logic
// needs: the compute-integration segment (remaining instructions, the rate
// of the current piecewise-constant segment and when it was last accrued),
// the blocking condition, per-epoch accumulators and trace bookkeeping.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "isa/kernel.hpp"
#include "trace/state.hpp"

namespace smtbal::mpisim {

inline constexpr SimTime kSimInf = std::numeric_limits<SimTime>::infinity();

enum class RunState : std::uint8_t {
  kComputing,
  kDelaying,
  kAtBarrier,
  kAtWaitAll,
  kDone,
};

[[nodiscard]] std::string_view to_string(RunState state);

/// A posted nonblocking receive, matched later by a WaitAll.
struct RecvReq {
  std::uint32_t peer = 0;
  int tag = 0;
  bool matched = false;
  SimTime arrival = 0.0;
};

struct RankRt {
  std::size_t phase = 0;
  RunState state = RunState::kComputing;
  isa::KernelId kernel = 0;
  trace::RankState compute_traced_as = trace::RankState::kCompute;
  trace::RankState delay_traced_as = trace::RankState::kStat;
  SimTime delay_until = 0.0;
  SimTime ready_at = kSimInf;  ///< barrier release / waitall completion
  std::vector<RecvReq> posted;
  int epochs = 0;

  // Compute integration: `remaining` is exact as of `accrued_at`; the rank
  // progresses at `rate` until the next accrual boundary (a rate change,
  // a preemption, an epoch snapshot or the completion itself).
  double remaining = 0.0;
  double rate = 0.0;
  SimTime accrued_at = 0.0;
  /// Whether a kComputeDone prediction for the current segment is queued.
  bool pred_valid = false;
  /// Bumped whenever a queued prediction becomes stale (lazy invalidation).
  std::uint64_t compute_gen = 0;

  // Trace bookkeeping.
  trace::RankState shown = trace::RankState::kInit;
  SimTime state_since = 0.0;

  // Per-epoch accumulators for policy reports. Compute time accrues with
  // the integration segment; wait time accrues lazily from `wait_since`.
  SimTime acc_compute = 0.0;
  SimTime acc_wait = 0.0;
  SimTime wait_since = 0.0;
};

/// The trace state a rank shows when not preempted.
[[nodiscard]] trace::RankState base_trace(const RankRt& rt);

}  // namespace smtbal::mpisim
