// Per-rank runtime state machine of the discrete-event engine.
//
// A rank is always in exactly one RunState; the engine advances it through
// its program's phases. The state the event-loop scans touch on every
// event (RunState, compute-integration segment, prediction generation,
// epoch counters, collective readiness) lives in parallel arrays inside
// detail::Sim — structure-of-arrays, indexed by rank id — while RankRt
// carries the cold per-rank bookkeeping: the phase cursor, posted
// receives, trace bookkeeping and the per-epoch accumulators.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "isa/kernel.hpp"
#include "trace/state.hpp"

namespace smtbal::mpisim {

inline constexpr SimTime kSimInf = std::numeric_limits<SimTime>::infinity();

enum class RunState : std::uint8_t {
  kComputing,
  kDelaying,
  kAtBarrier,
  kAtWaitAll,
  kDone,
};

[[nodiscard]] std::string_view to_string(RunState state);

/// A posted nonblocking receive, matched later by a WaitAll.
struct RecvReq {
  std::uint32_t peer = 0;
  int tag = 0;
  bool matched = false;
  SimTime arrival = 0.0;
};

/// Cold per-rank bookkeeping (see the file comment; the hot state is SoA
/// inside detail::Sim).
struct RankRt {
  std::size_t phase = 0;
  trace::RankState compute_traced_as = trace::RankState::kCompute;
  trace::RankState delay_traced_as = trace::RankState::kStat;
  SimTime delay_until = 0.0;
  std::vector<RecvReq> posted;

  // Trace bookkeeping.
  trace::RankState shown = trace::RankState::kInit;
  SimTime state_since = 0.0;

  // Per-epoch accumulators for policy reports. Compute time and issued
  // instructions accrue with the integration segment; wait time accrues
  // lazily from `wait_since`.
  SimTime acc_compute = 0.0;
  SimTime acc_wait = 0.0;
  double acc_issued = 0.0;
  SimTime wait_since = 0.0;
};

/// The trace state a rank in `state` shows when not preempted.
[[nodiscard]] trace::RankState base_trace(RunState state, const RankRt& rt);

}  // namespace smtbal::mpisim
