#include "mpisim/rank_state.hpp"

namespace smtbal::mpisim {

std::string_view to_string(RunState state) {
  switch (state) {
    case RunState::kComputing: return "computing";
    case RunState::kDelaying: return "delaying";
    case RunState::kAtBarrier: return "at-barrier";
    case RunState::kAtWaitAll: return "at-waitall";
    case RunState::kDone: return "done";
  }
  return "?";
}

trace::RankState base_trace(RunState state, const RankRt& rt) {
  switch (state) {
    case RunState::kComputing: return rt.compute_traced_as;
    case RunState::kDelaying: return rt.delay_traced_as;
    case RunState::kAtBarrier:
    case RunState::kAtWaitAll: return trace::RankState::kSync;
    case RunState::kDone: return trace::RankState::kDone;
  }
  return trace::RankState::kCompute;
}

}  // namespace smtbal::mpisim
