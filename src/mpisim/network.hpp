// Intra-node message transfer model: latency + bandwidth (the paper's
// experiments run all ranks inside one OpenPower 710 node over MPICH
// shared-memory transport).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace smtbal::mpisim {

struct NetworkConfig {
  SimTime base_latency = 2e-6;       ///< per-message software latency
  double bandwidth_bytes_per_s = 1.5e9;  ///< shared-memory copy bandwidth

  void validate() const;
};

class Network {
 public:
  explicit Network(NetworkConfig config);

  /// Arrival time of a message injected at `send_time`.
  [[nodiscard]] SimTime arrival_time(SimTime send_time, std::uint64_t bytes) const;

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  NetworkConfig config_;
};

}  // namespace smtbal::mpisim
