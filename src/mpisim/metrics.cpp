#include "mpisim/metrics.hpp"

#include <cmath>

namespace smtbal::mpisim {

void DurationHistogram::add(SimTime duration) {
  if (!(duration > 0.0)) return;
  const double decade = std::floor(std::log10(duration));
  const double bucket = decade + 9.0;  // 1 ns => bucket 0
  std::size_t index = 0;
  if (bucket >= static_cast<double>(kBuckets)) {
    index = kBuckets - 1;
  } else if (bucket > 0.0) {
    index = static_cast<std::size_t>(bucket);
  }
  ++counts[index];
}

std::uint64_t DurationHistogram::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts) sum += c;
  return sum;
}

void MetricsObserver::on_interval(RankId rank, SimTime begin, SimTime end,
                                  trace::RankState state) {
  RankMetrics& m = report_.ranks[rank.value()];
  const SimTime duration = end - begin;
  switch (state) {
    case trace::RankState::kCompute:
      m.compute += duration;
      m.compute_intervals.add(duration);
      break;
    case trace::RankState::kSync:
      m.wait += duration;
      m.spin += duration;
      m.wait_intervals.add(duration);
      break;
    case trace::RankState::kInit:
    case trace::RankState::kComm:
    case trace::RankState::kStat:
      m.spin += duration;
      break;
    case trace::RankState::kPreempted:
      m.preempted += duration;
      break;
    case trace::RankState::kDone:
      break;
  }
}

void MetricsObserver::on_priority_change(RankId rank, int from, int to,
                                         SimTime now) {
  (void)from, (void)to, (void)now;
  ++report_.ranks[rank.value()].priority_changes;
}

void MetricsObserver::on_placement_change(RankId rank, CpuId from, CpuId to,
                                          SimTime now) {
  (void)from, (void)to, (void)now;
  ++report_.ranks[rank.value()].placement_moves;
}

}  // namespace smtbal::mpisim
