// The multi-node simulation core behind Engine and cluster::ClusterEngine.
//
// Historically the event loop lived inside engine.cpp and drove exactly
// one chip + kernel. The cluster subsystem needs the *same* loop over M
// nodes — each with its own smt::Chip, os::KernelModel and
// ThroughputSampler — coupled by cross-node messages and global
// collectives, so the loop is factored out here and parameterized over:
//
//   * a vector of NodeCtx (per-node chip config / sampler / kernel);
//     the flat engine passes exactly one;
//   * a node_of_rank map alongside the within-node Placement;
//   * a MessageCostModel that prices every point-to-point transfer and
//     collective tree step — the seam where the cluster layer routes
//     intra-node traffic through mpisim::Network and inter-node traffic
//     through cluster::Interconnect (with link contention).
//
// With one node the generalisation is arithmetic-free: the same loads are
// built, the same rates sampled, the same events pushed in the same
// order, so single-node runs are bit-identical to the pre-split engine —
// and a cluster of M=1 is bit-identical to the flat engine by
// construction (tests/cluster_test.cpp locks this in).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mpisim/audit.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/engine.hpp"
#include "mpisim/event_queue.hpp"
#include "mpisim/network.hpp"
#include "mpisim/observer.hpp"
#include "mpisim/rank_state.hpp"
#include "os/noise.hpp"

namespace smtbal::mpisim {

/// Prices message transfers for the simulation core. The flat engine uses
/// NetworkCostModel (every transfer is intra-node); the cluster engine
/// routes by placement and may mutate link-contention state on
/// arrival_time calls (invoked exactly once per send, in deterministic
/// simulation order).
class MessageCostModel {
 public:
  virtual ~MessageCostModel() = default;

  /// Arrival time of a message from `src` to `dst` injected at
  /// `send_time`. May be stateful (link contention).
  virtual SimTime arrival_time(SimTime send_time, RankId src, RankId dst,
                               std::uint64_t bytes) = 0;

  /// Cost of one point-to-point step of a global collective's binomial
  /// tree. Must be stateless (called per arriving rank).
  virtual SimTime collective_step_cost(std::uint64_t bytes) = 0;
};

/// The flat engine's cost model: every rank shares one node, so every
/// transfer goes through the intra-node Network.
class NetworkCostModel final : public MessageCostModel {
 public:
  explicit NetworkCostModel(NetworkConfig config) : network_(config) {}

  SimTime arrival_time(SimTime send_time, RankId /*src*/, RankId /*dst*/,
                       std::uint64_t bytes) override {
    return network_.arrival_time(send_time, bytes);
  }
  SimTime collective_step_cost(std::uint64_t bytes) override {
    return network_.arrival_time(0.0, bytes);
  }

 private:
  Network network_;
};

namespace detail {

/// One simulated node, owned by the caller (Engine or ClusterEngine).
/// The Sim reads the chip config, samples rates through the sampler and
/// queries/mutates the kernel's process table; all three must outlive the
/// run.
struct NodeCtx {
  const smt::ChipConfig* chip = nullptr;
  smt::ThroughputSampler* sampler = nullptr;
  os::KernelModel* kernel = nullptr;
};

struct RunStats {
  SimTime end_time = 0.0;
  std::uint64_t events = 0;
};

/// The whole per-run simulation state; the owning engine builds one, runs
/// it, and composes the result from the observers.
///
/// The run is a pure event loop: rank completions are *predicted* into the
/// event queue (compute finish times from the piecewise-constant rates,
/// delay ends, message arrivals, barrier releases, noise windows) and
/// popped in (time, seq) order. A prediction invalidated by a rate change
/// or preemption is not searched for in the heap; the rank's generation
/// counter is bumped and the stale entry is discarded when it surfaces.
class Sim final : public CollectiveClient, public AuditSource {
 public:
  /// `placement` holds each rank's within-node CPU; `node_of_rank` names
  /// the node (index into `nodes`) hosting it. `config` supplies the
  /// per-node knobs shared by every node: barrier latency, spin kernel,
  /// noise, runaway guards.
  Sim(const Application& app, const Placement& placement,
      const std::vector<std::uint32_t>& node_of_rank,
      const EngineConfig& config, std::vector<NodeCtx> nodes,
      MessageCostModel& cost, const std::vector<Pid>& pids, ObserverBus& bus);

  RunStats run();

  [[nodiscard]] SimTime now() const { return now_; }

  /// EngineControl::set_rank_priority landed while the run is live:
  /// publish the change (the next refresh_rates() re-derives the affected
  /// rates).
  void notify_priority_change(RankId rank, int from, int to);

  /// EngineControl::move_rank / swap_ranks remapped a rank while the run
  /// is live (the kernel's process table and the engine's Placement are
  /// already updated): materialise the rank's compute progress on its old
  /// context, rebind the context maps, and invalidate its prediction the
  /// same way a priority change does — the next refresh_rates() sees the
  /// changed context words and re-derives the node's rates.
  void notify_placement_change(RankId rank, CpuId from, CpuId to);

  /// ClusterEngine::migrate_rank moved a rank to a (free) seat on another
  /// node while the run is live. The engine's node/placement/pid maps are
  /// already flipped; this rebinds the per-node rank lists and context
  /// maps, invalidates the rank's prediction, and — when `resume_at` lies
  /// in the future — stalls the rank on its new seat until the resident
  /// state finishes crossing the interconnect (reusing the noise
  /// preemption machinery, so the stall is visible as kPreempted).
  void notify_rank_migration(RankId rank, std::uint32_t from_node,
                             std::uint32_t to_node, CpuId to,
                             SimTime resume_at);

  /// AuditSource: snapshots the kernel state for invariant checkers
  /// (offered to observers via notify_bind at the start of run()).
  void invariant_audit(InvariantAudit& out) const override;

 private:
  /// Per-node runtime: the caller's context plus the node's position in
  /// the global context numbering, its resident ranks, its noise source
  /// and its memoised rate snapshot.
  struct NodeRt {
    NodeCtx ctx;
    std::uint32_t ctx_base = 0;       ///< first global context index
    std::vector<std::size_t> ranks;   ///< resident ranks, ascending
    os::NoiseSource noise;
    std::uint64_t load_key = 0;
    bool have_rates = false;
    smt::SampleResult rates{};
    // Incremental ChipLoad::key() derivation: `words` holds the last
    // derived per-context (kernel, priority) word (0 = idle), `chain[i]`
    // the key-hash chain state after mixing word i, and `used` the
    // engaged-prefix length the chain was seeded with. refresh_rates()
    // re-mixes only the suffix from the first changed word (from 0 when
    // the prefix length — the chain seed — changed), so the steady state
    // costs one word-compare per context, no hashing, no ChipLoad.
    std::vector<std::uint64_t> words;
    std::vector<std::uint64_t> chain;
    std::uint32_t used = 0;
    /// The node sampler's chip-shape seed, cached so the chain reseed on a
    /// prefix-length change stays a constant-time XOR. Seeding the chain
    /// with it keeps the incremental keys bit-identical to what
    /// sampler->sample(load) would compute (ChipLoad::key(shape_seed)).
    std::uint64_t shape_seed = 0;
  };

  [[nodiscard]] NodeRt& node_of(std::size_t rank) {
    return nodes_[node_of_rank_[rank]];
  }
  [[nodiscard]] const NodeRt& node_of(std::size_t rank) const {
    return nodes_[node_of_rank_[rank]];
  }
  [[nodiscard]] bool preempted(std::size_t rank) const;
  [[nodiscard]] bool all_done() const { return done_count_ == ranks_.size(); }

  void set_trace(std::size_t rank, trace::RankState state);
  void emit_meta(EventKind kind, std::uint32_t subject);
  void finish_rank(std::size_t rank);
  void accrue(std::size_t rank);
  void start_segment(std::size_t rank, double rate);
  void invalidate_prediction(std::size_t rank);
  void refresh_rates();
  [[nodiscard]] smt::ChipLoad build_load(const NodeRt& node) const;
  void notify_receiver(std::size_t rank);
  void complete_block(std::size_t rank);
  void release_rank(std::size_t rank) override;
  void arrive_collective(std::size_t rank, SimTime release_cost);
  void advance_rank(std::size_t rank);
  void schedule_next_noise(NodeRt& node);
  void on_noise_preempt(std::uint32_t global_ctx);
  void on_noise_resume(std::uint32_t global_ctx);
  [[nodiscard]] bool is_stale(const Event& event) const;
  void dispatch(const Event& event);
  bool check_epochs();
  [[noreturn]] void deadlock() const;

  const Application& app_;
  const Placement& placement_;
  const std::vector<std::uint32_t>& node_of_rank_;
  const EngineConfig& config_;
  MessageCostModel& cost_;
  const std::vector<Pid>& pids_;
  ObserverBus& bus_;

  std::vector<NodeRt> nodes_;
  std::vector<RankRt> ranks_;  ///< cold per-rank bookkeeping
  // Hot rank state, structure-of-arrays (parallel, indexed by rank id):
  // the per-event scans — staleness checks, rate refresh, load words,
  // collective release, epoch minima — walk these dense arrays instead of
  // chasing per-rank objects.
  std::vector<RunState> state_;
  std::vector<isa::KernelId> kernel_of_rank_;
  std::vector<SimTime> ready_at_;  ///< barrier release / waitall completion
  std::vector<int> epochs_;
  // Compute integration: `remaining_` is exact as of `accrued_at_`; the
  // rank progresses at `rate_` until the next accrual boundary. A queued
  // kComputeDone prediction is valid while `pred_valid_` is set and its
  // generation matches `compute_gen_` (lazy invalidation).
  std::vector<double> remaining_;
  std::vector<double> rate_;
  std::vector<SimTime> accrued_at_;
  std::vector<std::uint8_t> pred_valid_;
  std::vector<std::uint64_t> compute_gen_;
  isa::KernelId spin_kernel_;
  Collectives collectives_;
  EventQueue queue_;
  /// Global context index of each rank (node ctx_base + within-node
  /// linear) and its within-node linear CPU number.
  std::vector<std::uint32_t> ctx_of_rank_;
  std::vector<std::uint32_t> lin_of_rank_;
  /// Indexed by global context: resident rank (-1 = none) / node /
  /// preemption window end.
  std::vector<int> rank_on_linear_;
  std::vector<std::uint32_t> node_of_ctx_;
  std::vector<SimTime> preempt_until_;
  /// Ranks that entered a compute phase since the last refresh and still
  /// need a prediction (covers the no-load-change case: consecutive
  /// same-kernel segments, resumes from preemption).
  std::vector<std::size_t> fresh_compute_;
  std::size_t done_count_ = 0;
  int reported_epochs_ = 0;
  bool epochs_dirty_ = false;
  /// Whether the bus has any observer, latched once at the top of run();
  /// when false, every notify dispatch (and the Event materialisation
  /// feeding it) is skipped — the state-bearing work still runs.
  bool observed_ = true;
  /// False until run() starts: engines construct the Sim before a
  /// policy's on_start so pre-run priority/placement changes flow through
  /// the same notify paths, but those must not synthesise meta events
  /// (nothing is counting events yet).
  bool running_ = false;
  SimTime now_ = 0.0;
  std::uint64_t events_ = 0;  ///< processed (non-stale) events
  std::uint64_t pops_ = 0;    ///< all pops, the runaway guard's measure
};

}  // namespace detail
}  // namespace smtbal::mpisim
