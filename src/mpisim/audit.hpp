// Runtime-invariant audit surface of the simulation core.
//
// Observers normally see the simulation only through the event/interval
// notifications on the ObserverBus. Invariant checkers (simcheck) need
// more: a consistent snapshot of the internal state *between* events —
// rank run-states, blocking times, integration segments, the collective
// arrival counter, per-context effective priorities — to assert the
// relations the event kernel is supposed to preserve. AuditSource is that
// read-only window: the Sim hands itself to interested observers through
// SimObserver::on_bind at the start of run(), and a checker pulls a fresh
// InvariantAudit snapshot whenever it wants to verify one.
//
// The snapshot is filled into a caller-owned buffer (vectors are resized,
// not reallocated per call) because checkers sample after every event.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mpisim/rank_state.hpp"
#include "smt/priority.hpp"

namespace smtbal::smt {
struct ChipConfig;
}  // namespace smtbal::smt

namespace smtbal::mpisim {

/// Per-rank slice of the audit snapshot.
struct RankAudit {
  RunState state = RunState::kComputing;
  /// Blocking condition: barrier release / waitall completion time
  /// (kSimInf while unknown).
  SimTime ready_at = kSimInf;
  /// Compute integration segment as of the snapshot.
  double remaining = 0.0;
  double rate = 0.0;
  /// Whether a completion prediction for the current segment is queued.
  bool predicted = false;
};

/// Per-node slice of the audit snapshot.
struct NodeAudit {
  /// The node's chip configuration (owned by the engine, outlives the run).
  const smt::ChipConfig* chip = nullptr;
  /// First global context index of this node.
  std::uint32_t ctx_base = 0;
  /// Effective hardware priority of every context (slot order, one entry
  /// per context of `chip`). Contexts whose process exited report kOff;
  /// never-occupied contexts keep the kernel's spawn default.
  std::vector<smt::HwPriority> priorities;
  /// Whether a process occupies the context (spawned and not exited).
  std::vector<std::uint8_t> engaged;
};

/// A consistent snapshot of the event kernel's state between events.
struct InvariantAudit {
  SimTime now = 0.0;
  std::size_t queue_size = 0;
  std::size_t ranks_done = 0;
  /// Arrival count of the in-progress global collective (resets to 0 when
  /// the last participant arrives).
  std::size_t collective_arrived = 0;
  std::vector<RankAudit> ranks;
  std::vector<NodeAudit> nodes;
};

/// Implemented by the simulation core; handed to observers via on_bind.
/// Read-only: filling a snapshot must not perturb the simulation.
class AuditSource {
 public:
  virtual ~AuditSource() = default;

  /// Fills `out` with the current state (resizing its buffers as needed).
  virtual void invariant_audit(InvariantAudit& out) const = 0;
};

}  // namespace smtbal::mpisim
