#include "mpisim/network.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace smtbal::mpisim {

void NetworkConfig::validate() const {
  if (!std::isfinite(base_latency) || base_latency < 0.0) {
    std::ostringstream os;
    os << "NetworkConfig.base_latency must be finite and non-negative, got "
       << base_latency;
    throw InvalidArgument(os.str());
  }
  if (!std::isfinite(bandwidth_bytes_per_s) || bandwidth_bytes_per_s <= 0.0) {
    std::ostringstream os;
    os << "NetworkConfig.bandwidth_bytes_per_s must be finite and positive, "
          "got "
       << bandwidth_bytes_per_s
       << " (zero/negative bandwidth would stall or reverse every message)";
    throw InvalidArgument(os.str());
  }
}

Network::Network(NetworkConfig config) : config_(config) { config_.validate(); }

SimTime Network::arrival_time(SimTime send_time, std::uint64_t bytes) const {
  return send_time + config_.base_latency +
         static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
}

}  // namespace smtbal::mpisim
