#include "mpisim/network.hpp"

#include "common/error.hpp"

namespace smtbal::mpisim {

void NetworkConfig::validate() const {
  SMTBAL_REQUIRE(base_latency >= 0.0, "latency must be non-negative");
  SMTBAL_REQUIRE(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
}

Network::Network(NetworkConfig config) : config_(config) { config_.validate(); }

SimTime Network::arrival_time(SimTime send_time, std::uint64_t bytes) const {
  return send_time + config_.base_latency +
         static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
}

}  // namespace smtbal::mpisim
