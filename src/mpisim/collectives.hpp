// Synchronisation bookkeeping of the engine: global collectives (barrier /
// allreduce arrival counting and the iterative zero-cost release queue)
// and point-to-point message matching (send mailbox + posted-receive
// matching for waitall).
//
// The release queue exists because completing a rank from a zero-cost
// collective can bring it straight to the *next* collective
// (back-to-back barriers), re-entering the release path and mutating the
// arrival counter mid-release. Naively recursing released once per
// consecutive zero-cost collective (unbounded stack depth) while
// iterating state it was mutating; instead releasable ranks are queued
// and drained only by the outermost call.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <tuple>
#include <vector>

#include "common/types.hpp"
#include "mpisim/rank_state.hpp"

namespace smtbal::mpisim {

/// Engine-side callback used by Collectives to complete a released rank
/// (which advances it and may re-enter Collectives).
class CollectiveClient {
 public:
  virtual void release_rank(std::size_t rank) = 0;

 protected:
  ~CollectiveClient() = default;
};

class Collectives {
 public:
  explicit Collectives(std::size_t num_ranks) : num_ranks_(num_ranks) {}

  /// One more rank arrived at the current global collective. Returns true
  /// when it is the last arriver (the collective is complete and the
  /// caller must set every participant's release time).
  [[nodiscard]] bool arrive() {
    if (++barrier_arrived_ < num_ranks_) return false;
    barrier_arrived_ = 0;
    return true;
  }

  /// Arrival count of the in-progress collective. Conservation invariant
  /// (checked by simcheck): equals the number of ranks sitting at a
  /// collective whose release time is still unknown.
  [[nodiscard]] std::size_t arrived() const { return barrier_arrived_; }

  /// Releases every rank sitting at a collective whose release time is
  /// due (`ready_at[r] <= now + eps`), in rank order, re-entrant safe: a
  /// release cascade that arrives at — and completes — a further
  /// zero-cost collective appends to the queue the outermost call drains.
  /// `states` and `ready_at` are the engine's rank-indexed SoA views.
  void release_due(SimTime now, SimTime eps, std::span<const RunState> states,
                   std::span<const SimTime> ready_at, CollectiveClient& client);

  /// Records a message handed to the network at send time; `arrival` is
  /// when it reaches the receiver. FIFO per (src, dst, tag) channel, in
  /// send order — exactly MPI's non-overtaking guarantee.
  void post_send(std::uint32_t src, std::uint32_t dst, int tag,
                 SimTime arrival);

  /// Matches `posted` receives against sent messages (arrived or still in
  /// flight); returns true when all are matched, in which case
  /// `max_arrival` holds the latest arrival time among them.
  bool match_all(std::uint32_t rank, std::vector<RecvReq>& posted,
                 SimTime& max_arrival);

 private:
  std::size_t num_ranks_;
  std::size_t barrier_arrived_ = 0;
  /// In-flight and arrived messages keyed by (src, dst, tag).
  std::map<std::tuple<std::uint32_t, std::uint32_t, int>, std::deque<SimTime>>
      messages_;
  /// Ranks releasable from a due collective; drained iteratively by the
  /// outermost release_due (see file comment).
  std::vector<std::size_t> release_queue_;
  bool releasing_ = false;
};

}  // namespace smtbal::mpisim
