// MetricsObserver: per-rank time breakdowns, interval-duration histograms
// and priority-change counts, collected from the observer bus and
// serialized by src/runner/ into its JSONL records.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mpisim/observer.hpp"

namespace smtbal::mpisim {

/// Log-scale (decade) histogram of interval durations: bucket b counts
/// durations in [10^(b-9), 10^(b-8)) seconds, i.e. bucket 0 is < 10 ns
/// (including everything shorter) and bucket 13 is >= 10 ks.
struct DurationHistogram {
  static constexpr std::size_t kBuckets = 14;
  std::array<std::uint64_t, kBuckets> counts{};

  void add(SimTime duration);
  [[nodiscard]] std::uint64_t total() const;
};

struct RankMetrics {
  SimTime compute = 0.0;    ///< time shown as kCompute
  SimTime wait = 0.0;       ///< time blocked in MPI (kSync)
  /// Busy-wait occupancy: every non-compute interval where the rank still
  /// holds its SMT context spinning (sync + stat + init) — the paper's
  /// reason hardware priorities matter.
  SimTime spin = 0.0;
  SimTime preempted = 0.0;  ///< time stolen by OS noise
  DurationHistogram compute_intervals;
  DurationHistogram wait_intervals;
  std::uint64_t priority_changes = 0;
  std::uint64_t placement_moves = 0;
};

struct MetricsReport {
  std::vector<RankMetrics> ranks;
  /// Processed simulation events by kind (indexed by EventKind).
  std::array<std::uint64_t, kNumEventKinds> events_by_kind{};
  int epochs = 0;  ///< last reported global epoch
};

class MetricsObserver final : public SimObserver {
 public:
  explicit MetricsObserver(std::size_t num_ranks) {
    report_.ranks.resize(num_ranks);
  }

  void on_event(const Event& event) override {
    ++report_.events_by_kind[static_cast<std::size_t>(event.kind)];
  }
  void on_interval(RankId rank, SimTime begin, SimTime end,
                   trace::RankState state) override;
  void on_priority_change(RankId rank, int from, int to, SimTime now) override;
  void on_placement_change(RankId rank, CpuId from, CpuId to,
                           SimTime now) override;
  void on_epoch(const EpochReport& report) override {
    report_.epochs = report.epoch;
  }

  [[nodiscard]] MetricsReport take() { return std::move(report_); }

 private:
  MetricsReport report_;
};

}  // namespace smtbal::mpisim
