#include "mpisim/phase.hpp"

#include <map>

#include "common/error.hpp"

namespace smtbal::mpisim {

RankProgram& RankProgram::compute(isa::KernelId kernel, double instructions,
                                  trace::RankState traced_as) {
  SMTBAL_REQUIRE(instructions >= 0.0, "instruction count must be >= 0");
  phases.push_back(ComputePhase{kernel, instructions, traced_as});
  return *this;
}

RankProgram& RankProgram::barrier() {
  phases.push_back(BarrierPhase{});
  return *this;
}

RankProgram& RankProgram::send(RankId peer, std::uint64_t bytes, int tag) {
  phases.push_back(SendPhase{peer, bytes, tag});
  return *this;
}

RankProgram& RankProgram::recv(RankId peer, std::uint64_t bytes, int tag) {
  phases.push_back(RecvPhase{peer, bytes, tag});
  return *this;
}

RankProgram& RankProgram::wait_all() {
  phases.push_back(WaitAllPhase{});
  return *this;
}

RankProgram& RankProgram::allreduce(std::uint64_t bytes) {
  SMTBAL_REQUIRE(bytes > 0, "allreduce payload must be non-empty");
  phases.push_back(AllreducePhase{bytes});
  return *this;
}

RankProgram& RankProgram::delay(SimTime duration, trace::RankState traced_as) {
  SMTBAL_REQUIRE(duration >= 0.0, "delay must be >= 0");
  phases.push_back(DelayPhase{duration, traced_as});
  return *this;
}

void Application::validate() const {
  SMTBAL_REQUIRE(!ranks.empty(), "application has no ranks");

  // The collective sequence (kind + payload) must be identical across
  // ranks: MPI collectives are matched by order on the communicator.
  std::vector<std::pair<char, std::uint64_t>> reference_collectives;
  bool first = true;
  // (src, dst, tag) -> sends minus recvs
  std::map<std::tuple<std::uint32_t, std::uint32_t, int>, long> traffic;

  for (std::size_t r = 0; r < ranks.size(); ++r) {
    std::vector<std::pair<char, std::uint64_t>> collectives;
    for (const Phase& phase : ranks[r].phases) {
      if (std::holds_alternative<BarrierPhase>(phase)) {
        collectives.emplace_back('B', 0);
      } else if (const auto* reduce = std::get_if<AllreducePhase>(&phase)) {
        collectives.emplace_back('R', reduce->bytes);
      } else if (const auto* send = std::get_if<SendPhase>(&phase)) {
        SMTBAL_REQUIRE(send->peer.value() < ranks.size(),
                       "send peer out of range");
        SMTBAL_REQUIRE(send->peer.value() != r, "send to self");
        ++traffic[{static_cast<std::uint32_t>(r), send->peer.value(),
                   send->tag}];
      } else if (const auto* recv = std::get_if<RecvPhase>(&phase)) {
        SMTBAL_REQUIRE(recv->peer.value() < ranks.size(),
                       "recv peer out of range");
        SMTBAL_REQUIRE(recv->peer.value() != r, "recv from self");
        --traffic[{recv->peer.value(), static_cast<std::uint32_t>(r),
                   recv->tag}];
      }
    }
    if (first) {
      reference_collectives = std::move(collectives);
      first = false;
    } else {
      SMTBAL_REQUIRE(collectives == reference_collectives,
                     "rank collective sequences differ: the collective "
                     "would deadlock");
    }
  }
  for (const auto& [key, balance] : traffic) {
    SMTBAL_REQUIRE(balance == 0,
                   "unmatched send/recv traffic between ranks " +
                       std::to_string(std::get<0>(key)) + " -> " +
                       std::to_string(std::get<1>(key)));
  }
}

Placement Placement::identity(std::size_t num_ranks,
                              std::uint32_t slots_per_core) {
  Placement placement;
  for (std::size_t r = 0; r < num_ranks; ++r) {
    const auto linear = static_cast<std::uint32_t>(r);
    placement.cpu_of_rank.push_back(CpuId{CoreId{linear / slots_per_core},
                                          ThreadSlot{linear % slots_per_core}});
  }
  return placement;
}

Placement Placement::from_linear(const std::vector<std::uint32_t>& cpus,
                                 std::uint32_t slots_per_core) {
  Placement placement;
  for (std::uint32_t linear : cpus) {
    placement.cpu_of_rank.push_back(CpuId{CoreId{linear / slots_per_core},
                                          ThreadSlot{linear % slots_per_core}});
  }
  return placement;
}

}  // namespace smtbal::mpisim
