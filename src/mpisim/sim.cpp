#include "mpisim/sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace smtbal::mpisim {
namespace detail {

namespace {
constexpr SimTime kTimeEps = 1e-12;
}  // namespace

Sim::Sim(const Application& app, const Placement& placement,
         const std::vector<std::uint32_t>& node_of_rank,
         const EngineConfig& config, std::vector<NodeCtx> nodes,
         MessageCostModel& cost, const std::vector<Pid>& pids,
         ObserverBus& bus)
    : app_(app),
      placement_(placement),
      node_of_rank_(node_of_rank),
      config_(config),
      cost_(cost),
      pids_(pids),
      bus_(bus),
      nodes_(nodes.size()),
      ranks_(app.size()),
      state_(app.size(), RunState::kComputing),
      kernel_of_rank_(app.size(), 0),
      ready_at_(app.size(), kSimInf),
      epochs_(app.size(), 0),
      remaining_(app.size(), 0.0),
      rate_(app.size(), 0.0),
      accrued_at_(app.size(), 0.0),
      pred_valid_(app.size(), 0),
      compute_gen_(app.size(), 0),
      spin_kernel_(
          isa::KernelRegistry::instance().by_name(config.spin_kernel).id),
      collectives_(app.size()) {
  SMTBAL_CHECK(!nodes.empty());
  SMTBAL_CHECK(node_of_rank_.size() == app.size());

  std::uint32_t ctx_base = 0;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    NodeRt& node = nodes_[n];
    node.ctx = nodes[n];
    node.ctx_base = ctx_base;
    node.shape_seed = node.ctx.sampler->shape_seed();
    const std::uint32_t contexts = node.ctx.chip->num_contexts();
    node.words.assign(contexts, 0);
    node.chain.assign(contexts, 0);
    for (std::uint32_t ctx = 0; ctx < contexts; ++ctx) {
      node_of_ctx_.push_back(static_cast<std::uint32_t>(n));
    }
    if (config_.noise_horizon > 0.0) {
      // Every node draws from the same noise profile; the seed is offset
      // per node so timelines decorrelate (node 0 keeps the configured
      // seed, so single-node runs are unchanged).
      os::NoiseConfig noise_config = config_.noise;
      noise_config.seed += static_cast<std::uint64_t>(n);
      node.noise = os::NoiseSource(noise_config, config_.noise_horizon,
                                   contexts, node.ctx.chip->threads_per_core());
    }
    ctx_base += contexts;
  }
  rank_on_linear_.assign(ctx_base, -1);
  preempt_until_.assign(ctx_base, 0.0);

  ctx_of_rank_.resize(app.size());
  lin_of_rank_.resize(app.size());
  for (std::size_t r = 0; r < app.size(); ++r) {
    NodeRt& node = node_of(r);
    const std::uint32_t lin =
        placement_.cpu_of_rank[r].linear(node.ctx.chip->threads_per_core());
    lin_of_rank_[r] = lin;
    ctx_of_rank_[r] = node.ctx_base + lin;
    rank_on_linear_[ctx_of_rank_[r]] = static_cast<int>(r);
    node.ranks.push_back(r);
  }
}

bool Sim::preempted(std::size_t rank) const {
  return preempt_until_[ctx_of_rank_[rank]] > now_ + kTimeEps;
}

void Sim::notify_priority_change(RankId rank, int from, int to) {
  // Pre-run changes (a policy's on_start) predate the event loop: no meta
  // event exists to count, only the observer callback at t = 0.
  if (running_) emit_meta(EventKind::kPriorityChange, rank.value());
  if (observed_) bus_.notify_priority_change(rank, from, to, now_);
}

void Sim::notify_placement_change(RankId rank, CpuId from, CpuId to) {
  const auto r = static_cast<std::size_t>(rank.value());
  SMTBAL_CHECK(r < ranks_.size());
  NodeRt& node = node_of(r);
  const std::uint32_t tpc = node.ctx.chip->threads_per_core();
  const std::uint32_t new_lin = to.linear(tpc);
  const std::uint32_t old_lin = lin_of_rank_[r];
  if (new_lin == old_lin) return;
  // Materialise the integration segment on the old context before the
  // remap (the sampled rate up to now belongs to the old seat).
  if (state_[r] == RunState::kComputing && !preempted(r)) accrue(r);
  // A swap notifies once per rank; by the second notification the first
  // rank already claimed this rank's old seat, so only clear a seat that
  // still maps here.
  if (rank_on_linear_[node.ctx_base + old_lin] == static_cast<int>(r)) {
    rank_on_linear_[node.ctx_base + old_lin] = -1;
  }
  lin_of_rank_[r] = new_lin;
  ctx_of_rank_[r] = node.ctx_base + new_lin;
  rank_on_linear_[ctx_of_rank_[r]] = static_cast<int>(r);
  if (state_[r] == RunState::kComputing) {
    invalidate_prediction(r);
    fresh_compute_.push_back(r);
  }
  if (observed_) bus_.notify_placement_change(rank, from, to, now_);
}

void Sim::notify_rank_migration(RankId rank, std::uint32_t from_node,
                                std::uint32_t to_node, CpuId to,
                                SimTime resume_at) {
  const auto r = static_cast<std::size_t>(rank.value());
  SMTBAL_CHECK(r < ranks_.size());
  SMTBAL_CHECK(from_node < nodes_.size() && to_node < nodes_.size());
  SMTBAL_CHECK(from_node != to_node);
  NodeRt& src = nodes_[from_node];
  NodeRt& dst = nodes_[to_node];
  // Materialise the integration segment on the old seat (same discipline
  // as notify_placement_change); the engine already flipped the
  // placement maps, so the old context comes from our own cached index.
  if (state_[r] == RunState::kComputing && !preempted(r)) accrue(r);
  const std::uint32_t old_ctx = ctx_of_rank_[r];
  if (rank_on_linear_[old_ctx] == static_cast<int>(r)) {
    rank_on_linear_[old_ctx] = -1;
  }
  src.ranks.erase(std::find(src.ranks.begin(), src.ranks.end(), r));
  dst.ranks.insert(std::upper_bound(dst.ranks.begin(), dst.ranks.end(), r),
                   r);
  const std::uint32_t tpc = dst.ctx.chip->threads_per_core();
  lin_of_rank_[r] = to.linear(tpc);
  ctx_of_rank_[r] = dst.ctx_base + lin_of_rank_[r];
  SMTBAL_CHECK(rank_on_linear_[ctx_of_rank_[r]] < 0);
  rank_on_linear_[ctx_of_rank_[r]] = static_cast<int>(r);
  // Both nodes lost/gained a hardware context occupant: re-derive their
  // chip-load keys and predictions on the next refresh.
  if (state_[r] == RunState::kComputing) {
    invalidate_prediction(r);
    fresh_compute_.push_back(r);
  }
  // The resident state rides the interconnect; until it lands the rank
  // sits preempted on its new seat (same machinery as OS noise, so the
  // stall shows up as kPreempted in traces and stalls co-runners not at
  // all — the seat is idle, not contended).
  if (resume_at > now_ + kTimeEps) {
    const std::uint32_t ctx = ctx_of_rank_[r];
    preempt_until_[ctx] = std::max(preempt_until_[ctx], resume_at);
    queue_.push(preempt_until_[ctx], EventKind::kNoiseResume, ctx);
    if (state_[r] != RunState::kDone) {
      set_trace(r, trace::RankState::kPreempted);
    }
  }
  if (observed_) bus_.notify_rank_migration(rank, from_node, to_node, now_);
}

void Sim::invariant_audit(InvariantAudit& out) const {
  out.now = now_;
  out.queue_size = queue_.size();
  out.ranks_done = done_count_;
  out.collective_arrived = collectives_.arrived();
  out.ranks.resize(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    RankAudit& audit = out.ranks[r];
    audit.state = state_[r];
    audit.ready_at = ready_at_[r];
    audit.remaining = remaining_[r];
    audit.rate = rate_[r];
    audit.predicted = pred_valid_[r] != 0;
  }
  out.nodes.resize(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeRt& node = nodes_[n];
    NodeAudit& audit = out.nodes[n];
    audit.chip = node.ctx.chip;
    audit.ctx_base = node.ctx_base;
    const std::uint32_t contexts = node.ctx.chip->num_contexts();
    audit.priorities.resize(contexts);
    audit.engaged.resize(contexts);
    for (std::uint32_t ctx = 0; ctx < contexts; ++ctx) {
      const CpuId cpu = node.ctx.chip->cpu(ctx);
      audit.priorities[ctx] = node.ctx.kernel->effective_priority(cpu);
      audit.engaged[ctx] = node.ctx.kernel->process_on(cpu).has_value();
    }
  }
}

void Sim::set_trace(std::size_t rank, trace::RankState state) {
  RankRt& rt = ranks_[rank];
  if (rt.shown == state) return;
  if (observed_ && now_ > rt.state_since &&
      rt.shown != trace::RankState::kDone) {
    bus_.notify_interval(RankId{static_cast<std::uint32_t>(rank)},
                         rt.state_since, now_, rt.shown);
  }
  rt.state_since = now_;
  rt.shown = state;
}

/// Publishes a synthesized (never-queued) event to the observers.
void Sim::emit_meta(EventKind kind, std::uint32_t subject) {
  if (!observed_) return;
  Event event;
  event.time = now_;
  event.kind = kind;
  event.subject = subject;
  bus_.notify_event(event);
}

void Sim::finish_rank(std::size_t rank) {
  state_[rank] = RunState::kDone;
  set_trace(rank, trace::RankState::kDone);
  node_of(rank).ctx.kernel->exit_process(pids_[rank]);
  // The kernel just freed the seat; drop our occupancy mirror too, or a
  // later migrant landing on it would pass the kernel's free-seat check
  // and then trip the seating invariant here.
  if (rank_on_linear_[ctx_of_rank_[rank]] == static_cast<int>(rank)) {
    rank_on_linear_[ctx_of_rank_[rank]] = -1;
  }
  ++done_count_;
}

/// Materialises the rank's compute progress up to now_ (the segment
/// boundary of the piecewise-constant integration).
void Sim::accrue(std::size_t rank) {
  const SimTime dt = now_ - accrued_at_[rank];
  if (dt > 0.0) {
    remaining_[rank] -= rate_[rank] * dt;
    ranks_[rank].acc_compute += dt;
    ranks_[rank].acc_issued += rate_[rank] * dt;
  }
  accrued_at_[rank] = now_;
}

/// Starts a fresh integration segment at `rate` and predicts the
/// completion into the queue (no prediction for a starved rate, exactly
/// as the rescan loop had no next-event candidate for it).
void Sim::start_segment(std::size_t rank, double rate) {
  rate_[rank] = rate;
  accrued_at_[rank] = now_;
  ++compute_gen_[rank];
  pred_valid_[rank] = 0;
  if (rate > 0.0) {
    queue_.push(now_ + remaining_[rank] / rate, EventKind::kComputeDone,
                static_cast<std::uint32_t>(rank), compute_gen_[rank]);
    pred_valid_[rank] = 1;
  }
}

/// Drops a queued compute prediction (rate change, preemption) without
/// touching the heap: the generation bump makes the queued entry stale.
void Sim::invalidate_prediction(std::size_t rank) {
  pred_valid_[rank] = 0;
  ++compute_gen_[rank];
}

/// Re-derives rates on every node whose chip load changed, and
/// (re-)predicts completions — but only for the contexts whose sampled
/// rate actually changed or that started a fresh compute segment;
/// everyone else's queued prediction stays valid. Nodes are independent
/// sampling domains: an event on one node re-samples only that node.
///
/// The load key is derived incrementally: each context's (kernel,
/// priority) word is recomputed from ground truth and compared against
/// the node's cached word, and only the hash-chain suffix from the first
/// changed word is re-mixed (ChipLoad::key() prefix deltas). The common
/// nothing-changed case costs one compare per context — no hashing, no
/// ChipLoad construction, no sampler lookup.
void Sim::refresh_rates() {
  for (NodeRt& node : nodes_) {
    const smt::ChipConfig& chip = *node.ctx.chip;
    const std::uint32_t contexts = chip.num_contexts();
    std::uint32_t first_changed = contexts;  // sentinel: no word changed
    std::uint32_t used = 0;
    std::uint64_t engaged = 0;
    for (std::uint32_t ctx = 0; ctx < contexts; ++ctx) {
      const CpuId cpu = chip.cpu(ctx);
      std::uint64_t word = 0;
      if (node.ctx.kernel->process_on(cpu).has_value()) {
        const int rank = rank_on_linear_[node.ctx_base + ctx];
        SMTBAL_CHECK(rank >= 0);
        const auto r = static_cast<std::size_t>(rank);
        const bool computing =
            state_[r] == RunState::kComputing && !preempted(r);
        word = smt::ChipLoad::context_word(
            computing ? kernel_of_rank_[r] : spin_kernel_,
            node.ctx.kernel->effective_priority(cpu));
        used = ctx + 1;
        ++engaged;
      }
      if (word != node.words[ctx]) {
        node.words[ctx] = word;
        first_changed = std::min(first_changed, ctx);
      }
    }
    if (node.have_rates && first_changed == contexts) continue;
    // Re-mix from the first changed word; from 0 when the engaged-prefix
    // length changed (it seeds the chain) or nothing is cached yet.
    const std::uint32_t from =
        used == node.used ? std::min(first_changed, used) : 0;
    std::uint64_t chain_state =
        from == 0 ? smt::ChipLoad::chain_seed(used, node.shape_seed)
                  : node.chain[from - 1];
    for (std::uint32_t i = from; i < used; ++i) {
      chain_state = smt::ChipLoad::chain_mix(chain_state, node.words[i]);
      node.chain[i] = chain_state;
    }
    node.used = used;
    const std::uint64_t key =
        smt::ChipLoad::chain_finish(chain_state, engaged, used);
    if (node.have_rates && key == node.load_key) continue;
    node.load_key = key;
    node.have_rates = true;
    // Copy, not reference: the sampler's map may rehash on later misses.
    if (const smt::SampleResult* hit = node.ctx.sampler->probe(key)) {
      node.rates = *hit;
    } else {
      node.rates = node.ctx.sampler->sample_measured(key, build_load(node));
    }
    for (const std::size_t r : node.ranks) {
      if (state_[r] != RunState::kComputing || preempted(r)) continue;
      const double rate = node.rates.instr_rate[lin_of_rank_[r]];
      if (pred_valid_[r] == 0) {
        start_segment(r, rate);
      } else if (rate != rate_[r]) {
        accrue(r);
        start_segment(r, rate);
      }
    }
  }
  // Fresh compute segments on nodes whose load key did not change (the
  // re-sampled nodes above already predicted them: pred_valid is set).
  for (const std::size_t r : fresh_compute_) {
    if (state_[r] != RunState::kComputing || pred_valid_[r] != 0 ||
        preempted(r)) {
      continue;
    }
    start_segment(r, node_of(r).rates.instr_rate[lin_of_rank_[r]]);
  }
  fresh_compute_.clear();
}

/// Current load of one node's chip: what every context runs right now.
/// Only the sampler-miss path needs the materialised ChipLoad; the
/// steady-state key derivation lives in refresh_rates() and must stay in
/// lockstep with this function (same word per context).
smt::ChipLoad Sim::build_load(const NodeRt& node) const {
  smt::ChipLoad load;
  const smt::ChipConfig& chip = *node.ctx.chip;
  for (std::uint32_t ctx = 0; ctx < chip.num_contexts(); ++ctx) {
    const CpuId cpu = chip.cpu(ctx);
    if (!node.ctx.kernel->process_on(cpu).has_value()) continue;  // idle
    const int rank = rank_on_linear_[node.ctx_base + ctx];
    SMTBAL_CHECK(rank >= 0);
    const auto r = static_cast<std::size_t>(rank);
    const bool computing = state_[r] == RunState::kComputing && !preempted(r);
    load.contexts[ctx] =
        smt::ContextLoad{computing ? kernel_of_rank_[r] : spin_kernel_,
                         node.ctx.kernel->effective_priority(cpu)};
  }
  return load;
}

/// A message for `rank` arrived: if it is blocked in waitall, recompute
/// its readiness (and complete it if already due).
void Sim::notify_receiver(std::size_t rank) {
  if (state_[rank] != RunState::kAtWaitAll) return;
  SimTime max_arrival = 0.0;
  if (collectives_.match_all(static_cast<std::uint32_t>(rank),
                             ranks_[rank].posted, max_arrival)) {
    ready_at_[rank] = std::max(max_arrival, now_);
    if (ready_at_[rank] <= now_ + kTimeEps) complete_block(rank);
  }
}

/// The rank's blocking condition is satisfied: advance past the phase.
void Sim::complete_block(std::size_t rank) {
  RankRt& rt = ranks_[rank];
  switch (state_[rank]) {
    case RunState::kComputing:
      break;
    case RunState::kDelaying:
      break;
    case RunState::kAtBarrier:
      rt.acc_wait += now_ - rt.wait_since;
      ++epochs_[rank];
      epochs_dirty_ = true;
      break;
    case RunState::kAtWaitAll:
      rt.acc_wait += now_ - rt.wait_since;
      rt.posted.clear();
      ++epochs_[rank];
      epochs_dirty_ = true;
      break;
    case RunState::kDone:
      return;
  }
  ready_at_[rank] = kSimInf;
  ++rt.phase;
  advance_rank(rank);
}

// CollectiveClient: a due collective releases this rank.
void Sim::release_rank(std::size_t rank) { complete_block(rank); }

/// The rank arrives at a global collective; when the last participant
/// arrives, everyone is released after `release_cost` (the collective
/// sequences are identical across ranks — validated — so every arriver
/// passes the same cost). A costed release is scheduled as a single
/// kBarrierRelease event; a zero-cost release drains inline through the
/// collectives module's re-entrant-safe queue.
void Sim::arrive_collective(std::size_t rank, SimTime release_cost) {
  state_[rank] = RunState::kAtBarrier;
  ready_at_[rank] = kSimInf;
  ranks_[rank].wait_since = now_;
  set_trace(rank, trace::RankState::kSync);
  if (!collectives_.arrive()) return;
  const SimTime release = now_ + release_cost;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (state_[r] == RunState::kAtBarrier) {
      ready_at_[r] = release;
    }
  }
  if (release > now_ + kTimeEps) {
    queue_.push(release, EventKind::kBarrierRelease);
    return;
  }
  collectives_.release_due(now_, kTimeEps, state_, ready_at_, *this);
}

/// Executes phases from the rank's cursor until it blocks or finishes.
void Sim::advance_rank(std::size_t rank) {
  RankRt& rt = ranks_[rank];
  const auto& phases = app_.ranks[rank].phases;

  while (true) {
    if (rt.phase >= phases.size()) {
      finish_rank(rank);
      return;
    }
    const Phase& phase = phases[rt.phase];

    if (const auto* compute = std::get_if<ComputePhase>(&phase)) {
      if (compute->instructions <= 0.0) {
        ++rt.phase;
        continue;
      }
      state_[rank] = RunState::kComputing;
      remaining_[rank] = compute->instructions;
      kernel_of_rank_[rank] = compute->kernel;
      rt.compute_traced_as = compute->traced_as;
      invalidate_prediction(rank);
      fresh_compute_.push_back(rank);
      set_trace(rank, compute->traced_as);
      return;
    }
    if (std::holds_alternative<BarrierPhase>(phase)) {
      arrive_collective(rank, config_.barrier_latency);
      return;
    }
    if (const auto* reduce = std::get_if<AllreducePhase>(&phase)) {
      // Reduce + broadcast over a binomial tree: 2*ceil(log2 N)
      // point-to-point steps after the last rank arrives.
      const double n = static_cast<double>(ranks_.size());
      const double steps = 2.0 * std::ceil(std::log2(std::max(n, 2.0)));
      const SimTime step_cost = cost_.collective_step_cost(reduce->bytes);
      arrive_collective(rank, config_.barrier_latency + steps * step_cost);
      return;
    }
    if (const auto* send = std::get_if<SendPhase>(&phase)) {
      const SimTime arrival =
          cost_.arrival_time(now_, RankId{static_cast<std::uint32_t>(rank)},
                             send->peer, send->bytes);
      collectives_.post_send(static_cast<std::uint32_t>(rank),
                             send->peer.value(), send->tag, arrival);
      queue_.push(arrival, EventKind::kMsgArrival, send->peer.value(), 0,
                  MsgPayload{static_cast<std::uint32_t>(rank),
                             send->peer.value(), send->tag, send->bytes});
      ++rt.phase;
      continue;
    }
    if (const auto* recv = std::get_if<RecvPhase>(&phase)) {
      rt.posted.push_back(RecvReq{recv->peer.value(), recv->tag});
      ++rt.phase;
      continue;
    }
    if (std::holds_alternative<WaitAllPhase>(phase)) {
      SimTime max_arrival = 0.0;
      const bool all = collectives_.match_all(
          static_cast<std::uint32_t>(rank), rt.posted, max_arrival);
      if (all && max_arrival <= now_ + kTimeEps) {
        rt.posted.clear();
        ++epochs_[rank];
        epochs_dirty_ = true;
        ++rt.phase;
        continue;
      }
      state_[rank] = RunState::kAtWaitAll;
      // A fully matched set with in-flight messages completes at the
      // last arrival; its kMsgArrival event is already queued and wakes
      // the rank. Unmatched receives wait for a future send.
      ready_at_[rank] = all ? std::max(max_arrival, now_) : kSimInf;
      rt.wait_since = now_;
      set_trace(rank, trace::RankState::kSync);
      return;
    }
    if (const auto* delay = std::get_if<DelayPhase>(&phase)) {
      if (delay->duration <= 0.0) {
        ++rt.phase;
        continue;
      }
      state_[rank] = RunState::kDelaying;
      rt.delay_until = now_ + delay->duration;
      rt.delay_traced_as = delay->traced_as;
      queue_.push(rt.delay_until, EventKind::kDelayDone,
                  static_cast<std::uint32_t>(rank));
      set_trace(rank, delay->traced_as);
      return;
    }
    SMTBAL_CHECK_MSG(false, "unhandled phase variant");
  }
}

/// Schedules the node's next pending OS-noise event (one outstanding per
/// node at a time; each node's source is consumed in timeline order).
void Sim::schedule_next_noise(NodeRt& node) {
  if (node.noise.exhausted()) return;
  const os::NoiseEvent& event = node.noise.peek();
  queue_.push(event.start, EventKind::kNoisePreempt,
              node.ctx_base +
                  event.cpu.linear(node.ctx.chip->threads_per_core()));
}

void Sim::on_noise_preempt(std::uint32_t global_ctx) {
  NodeRt& node = nodes_[node_of_ctx_[global_ctx]];
  const os::NoiseEvent event = node.noise.next();
  schedule_next_noise(node);
  node.ctx.kernel->on_interrupt(event.cpu);
  const std::uint32_t lin =
      node.ctx_base + event.cpu.linear(node.ctx.chip->threads_per_core());
  if (lin >= preempt_until_.size()) return;
  const bool was_preempted = preempt_until_[lin] > now_ + kTimeEps;
  preempt_until_[lin] = std::max(preempt_until_[lin], event.end());
  queue_.push(preempt_until_[lin], EventKind::kNoiseResume, lin);
  const bool is_preempted = preempt_until_[lin] > now_ + kTimeEps;
  const int rank = rank_on_linear_[lin];
  if (rank < 0) return;
  const auto r = static_cast<std::size_t>(rank);
  if (state_[r] == RunState::kDone) return;
  if (!was_preempted && is_preempted && state_[r] == RunState::kComputing) {
    // Suspend the integration segment for the preemption window.
    accrue(r);
    invalidate_prediction(r);
  }
  set_trace(r, trace::RankState::kPreempted);
}

void Sim::on_noise_resume(std::uint32_t global_ctx) {
  preempt_until_[global_ctx] = 0.0;
  const int rank = rank_on_linear_[global_ctx];
  if (rank < 0) return;
  const auto r = static_cast<std::size_t>(rank);
  if (state_[r] != RunState::kDone) {
    set_trace(r, base_trace(state_[r], ranks_[r]));
  }
  if (state_[r] == RunState::kComputing && pred_valid_[r] == 0) {
    // Resume the suspended segment; refresh_rates() predicts anew.
    fresh_compute_.push_back(r);
  }
}

/// A queued event that no longer matches the simulation state (lazy
/// invalidation): superseded compute predictions and noise resumes of
/// preemption windows that were extended or already closed.
bool Sim::is_stale(const Event& event) const {
  switch (event.kind) {
    case EventKind::kComputeDone:
      return event.generation != compute_gen_[event.subject] ||
             state_[event.subject] != RunState::kComputing;
    case EventKind::kNoiseResume:
      return preempt_until_[event.subject] == 0.0 ||
             preempt_until_[event.subject] > event.time + kTimeEps;
    default:
      return false;
  }
}

void Sim::dispatch(const Event& event) {
  switch (event.kind) {
    case EventKind::kComputeDone: {
      const std::size_t rank = event.subject;
      accrue(rank);
      invalidate_prediction(rank);
      complete_block(rank);
      break;
    }
    case EventKind::kDelayDone: {
      const std::size_t rank = event.subject;
      if (state_[rank] == RunState::kDelaying &&
          ranks_[rank].delay_until <= now_ + kTimeEps) {
        complete_block(rank);
      }
      break;
    }
    case EventKind::kMsgArrival:
      notify_receiver(event.msg.dst);
      break;
    case EventKind::kBarrierRelease:
      collectives_.release_due(now_, kTimeEps, state_, ready_at_, *this);
      break;
    case EventKind::kNoisePreempt:
      on_noise_preempt(event.subject);
      break;
    case EventKind::kNoiseResume:
      on_noise_resume(event.subject);
      break;
    case EventKind::kPriorityChange:
    case EventKind::kEpochEnd:
      break;  // meta kinds are never queued
  }
}

/// Reports a crossed epoch boundary (if any) to the observers; returns
/// true when a report was emitted (a policy may have reacted).
bool Sim::check_epochs() {
  epochs_dirty_ = false;
  // Finished ranks hold their final epoch count, so the global epoch
  // keeps advancing (and the last epoch gets reported) as ranks exit.
  int min_epochs = std::numeric_limits<int>::max();
  for (const int epochs : epochs_) {
    min_epochs = std::min(min_epochs, epochs);
  }
  if (min_epochs == std::numeric_limits<int>::max() ||
      min_epochs <= reported_epochs_) {
    return false;
  }
  reported_epochs_ = min_epochs;

  EpochReport report;
  report.epoch = reported_epochs_;
  report.now = now_;
  report.ranks.reserve(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    RankRt& rt = ranks_[r];
    // Materialise the lazy accumulators up to the snapshot point.
    if (state_[r] == RunState::kComputing && !preempted(r)) {
      accrue(r);
    } else if (state_[r] == RunState::kAtBarrier ||
               state_[r] == RunState::kAtWaitAll) {
      rt.acc_wait += now_ - rt.wait_since;
      rt.wait_since = now_;
    }
    RankEpochStats stats;
    stats.compute = rt.acc_compute;
    stats.wait = rt.acc_wait;
    stats.issued = rt.acc_issued;
    // Observation snapshot: the rank's sampled IPC, its share of its
    // core's throughput, its effective priority and its current seat.
    const NodeRt& node = node_of(r);
    const std::uint32_t lin = lin_of_rank_[r];
    if (node.have_rates) {
      stats.ipc = node.rates.ipc[lin];
      const std::uint32_t tpc = node.ctx.chip->threads_per_core();
      const std::uint32_t core_base = (lin / tpc) * tpc;
      double core_rate = 0.0;
      for (std::uint32_t s = 0; s < tpc; ++s) {
        core_rate += node.rates.instr_rate[core_base + s];
      }
      if (core_rate > 0.0) {
        stats.decode_share = node.rates.instr_rate[lin] / core_rate;
      }
    }
    stats.priority = smt::level(
        node.ctx.kernel->effective_priority(placement_.cpu_of_rank[r]));
    stats.cpu = placement_.cpu_of_rank[r];
    report.ranks.push_back(stats);
    rt.acc_compute = 0.0;
    rt.acc_wait = 0.0;
    rt.acc_issued = 0.0;
  }
  emit_meta(EventKind::kEpochEnd, static_cast<std::uint32_t>(report.epoch));
  if (observed_) bus_.notify_epoch(report);
  return true;
}

void Sim::deadlock() const {
  std::ostringstream os;
  os << "MPI application deadlocked at t=" << now_ << "s; rank states:";
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    os << " P" << (r + 1) << "=" << to_string(state_[r]) << "(phase "
       << ranks_[r].phase << ")";
  }
  throw SimulationError(os.str());
}

RunStats Sim::run() {
  running_ = true;
  // Latched once: attach order is fixed before run() (Engine enforces it),
  // so an unobserved run skips every notification dispatch below.
  observed_ = !bus_.empty();
  if (observed_) bus_.notify_bind(this);
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (state_[r] != RunState::kDone) advance_rank(r);
  }
  refresh_rates();
  if (epochs_dirty_ && check_epochs()) refresh_rates();
  for (NodeRt& node : nodes_) schedule_next_noise(node);

  while (!all_done()) {
    if (queue_.empty()) deadlock();
    SMTBAL_CHECK_MSG(++pops_ <= config_.max_events,
                     "engine exceeded max_events — runaway simulation?");
    SMTBAL_CHECK_MSG(now_ <= config_.max_sim_time,
                     "engine exceeded max_sim_time");
    const Event event = queue_.pop();
    if (is_stale(event)) continue;
    now_ = std::max(now_, event.time);
    ++events_;
    if (observed_) bus_.notify_event(event);
    dispatch(event);
    refresh_rates();
    if (epochs_dirty_ && check_epochs()) refresh_rates();
  }

  // Flush trailing trace intervals and close the trace.
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    set_trace(r, trace::RankState::kDone);
  }
  if (observed_) bus_.notify_finish(now_);
  return RunStats{now_, events_};
}

}  // namespace detail
}  // namespace smtbal::mpisim
