#include "mpisim/hooks.hpp"

namespace smtbal::mpisim {

int node_priority_sum(const EngineControl& control, std::uint32_t node) {
  if (node >= control.num_nodes()) {
    throw InvalidArgument("node_priority_sum: node " + std::to_string(node) +
                          " out of range [0, " +
                          std::to_string(control.num_nodes()) + ")");
  }
  int sum = 0;
  for (std::size_t r = 0; r < control.num_ranks(); ++r) {
    const RankId rank{static_cast<std::uint32_t>(r)};
    if (control.node_of(rank) != node) continue;
    // An exited rank's context reports OFF (level 0), so it naturally
    // drops out of the sum.
    sum += control.rank_priority(rank);
  }
  return sum;
}

}  // namespace smtbal::mpisim
