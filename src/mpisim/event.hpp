// Typed events of the discrete-event simulation kernel.
//
// Every state transition of the engine is driven by one of these events:
// the heap-scheduled kinds are pushed into EventQueue with an absolute
// simulation time, while PriorityChange and EpochEnd are synthesized at
// dispatch time (they happen *inside* the processing of another event and
// are delivered to observers immediately, never queued).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace smtbal::mpisim {

enum class EventKind : std::uint8_t {
  kComputeDone = 0,   ///< a rank's current compute phase finishes
  kDelayDone = 1,     ///< a fixed-duration delay phase elapses
  kMsgArrival = 2,    ///< a point-to-point message reaches its receiver
  kBarrierRelease = 3, ///< a collective's release cost elapses
  kNoisePreempt = 4,  ///< an OS-noise event steals a CPU
  kNoiseResume = 5,   ///< a CPU's preemption window ends
  kPriorityChange = 6, ///< a rank's hardware priority was rewritten (meta)
  kEpochEnd = 7,      ///< all ranks completed one more sync epoch (meta)
};

inline constexpr std::size_t kNumEventKinds = 8;

[[nodiscard]] std::string_view to_string(EventKind kind);

/// Payload of a kMsgArrival event (which message reached whom).
struct MsgPayload {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  int tag = 0;
  /// Message size; lets observers accumulate a rank-to-rank traffic
  /// graph (cluster::CommGraphObserver) without re-walking the program.
  std::uint64_t bytes = 0;
};

struct Event {
  SimTime time = 0.0;
  /// Monotone insertion number; the (time, seq) pair totally orders the
  /// queue, so simultaneous events pop in deterministic insertion order.
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kComputeDone;
  /// Event-kind dependent subject: the rank for kComputeDone/kDelayDone/
  /// kPriorityChange, the linear CPU for kNoisePreempt/kNoiseResume.
  std::uint32_t subject = 0;
  /// Lazy invalidation: a kComputeDone prediction is only valid while it
  /// matches the rank's current prediction generation (re-predictions and
  /// preemptions bump the generation instead of searching the heap).
  std::uint64_t generation = 0;
  MsgPayload msg{};
};

}  // namespace smtbal::mpisim
