#include "mpisim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace smtbal::mpisim {

namespace {

constexpr double kInstrEps = 1e-6;
constexpr SimTime kTimeEps = 1e-12;
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

enum class RunState : std::uint8_t {
  kComputing,
  kDelaying,
  kAtBarrier,
  kAtWaitAll,
  kDone,
};

std::string_view to_string(RunState state) {
  switch (state) {
    case RunState::kComputing: return "computing";
    case RunState::kDelaying: return "delaying";
    case RunState::kAtBarrier: return "at-barrier";
    case RunState::kAtWaitAll: return "at-waitall";
    case RunState::kDone: return "done";
  }
  return "?";
}

struct RecvReq {
  std::uint32_t peer = 0;
  int tag = 0;
  bool matched = false;
  SimTime arrival = 0.0;
};

struct RankRt {
  std::size_t phase = 0;
  RunState state = RunState::kComputing;
  double remaining = 0.0;
  isa::KernelId kernel = 0;
  trace::RankState compute_traced_as = trace::RankState::kCompute;
  trace::RankState delay_traced_as = trace::RankState::kStat;
  SimTime delay_until = 0.0;
  SimTime ready_at = kInf;  ///< barrier release / waitall completion
  std::vector<RecvReq> posted;
  int epochs = 0;
  // Trace bookkeeping.
  trace::RankState shown = trace::RankState::kInit;
  SimTime state_since = 0.0;
  // Per-epoch accumulators for policy reports.
  SimTime acc_compute = 0.0;
  SimTime acc_wait = 0.0;
};

/// The whole per-run simulation state; Engine::run() builds one, runs it,
/// and extracts the result.
class Sim {
 public:
  Sim(const Application& app, const Placement& placement,
      const EngineConfig& config, smt::ThroughputSampler& sampler,
      os::KernelModel& kernel, const std::vector<Pid>& pids,
      BalancePolicy* policy, EngineControl& control)
      : app_(app),
        placement_(placement),
        config_(config),
        sampler_(sampler),
        kernel_(kernel),
        pids_(pids),
        policy_(policy),
        control_(control),
        tracer_(app.size()),
        ranks_(app.size()),
        spin_kernel_(
            isa::KernelRegistry::instance().by_name(config.spin_kernel).id) {
    const std::uint32_t contexts = config_.chip.num_contexts();
    rank_on_linear_.assign(contexts, -1);
    preempt_until_.assign(contexts, 0.0);
    for (std::size_t r = 0; r < app.size(); ++r) {
      rank_on_linear_[linear_of(r)] = static_cast<int>(r);
    }
    if (config_.noise_horizon > 0.0) {
      noise_ = os::generate_noise(config_.noise, config_.noise_horizon,
                                  contexts, smt::kThreadsPerCore);
    }
  }

  RunResult run();

 private:
  [[nodiscard]] std::uint32_t linear_of(std::size_t rank) const {
    return placement_.cpu_of_rank[rank].linear(smt::kThreadsPerCore);
  }
  [[nodiscard]] bool preempted(std::size_t rank) const {
    return preempt_until_[linear_of(rank)] > now_ + kTimeEps;
  }
  [[nodiscard]] bool all_done() const {
    return done_count_ == ranks_.size();
  }

  [[nodiscard]] trace::RankState base_trace(const RankRt& rt) const {
    switch (rt.state) {
      case RunState::kComputing: return rt.compute_traced_as;
      case RunState::kDelaying: return rt.delay_traced_as;
      case RunState::kAtBarrier:
      case RunState::kAtWaitAll: return trace::RankState::kSync;
      case RunState::kDone: return trace::RankState::kDone;
    }
    return trace::RankState::kCompute;
  }

  void set_trace(std::size_t rank, trace::RankState state) {
    RankRt& rt = ranks_[rank];
    if (rt.shown == state) return;
    if (now_ > rt.state_since && rt.shown != trace::RankState::kDone) {
      tracer_.record(RankId{static_cast<std::uint32_t>(rank)}, rt.state_since,
                     now_, rt.shown);
    }
    rt.state_since = now_;
    rt.shown = state;
  }

  void finish_rank(std::size_t rank) {
    RankRt& rt = ranks_[rank];
    rt.state = RunState::kDone;
    set_trace(rank, trace::RankState::kDone);
    kernel_.exit_process(pids_[rank]);
    ++done_count_;
  }

  /// Matches posted receives against arrived sends; returns true when all
  /// are matched, in which case `max_arrival` holds the completion time.
  bool match_all(std::size_t rank, SimTime& max_arrival) {
    RankRt& rt = ranks_[rank];
    max_arrival = 0.0;
    bool all = true;
    for (RecvReq& req : rt.posted) {
      if (!req.matched) {
        const auto key = std::tuple{req.peer, static_cast<std::uint32_t>(rank),
                                    req.tag};
        auto it = messages_.find(key);
        if (it != messages_.end() && !it->second.empty()) {
          req.matched = true;
          req.arrival = it->second.front();
          it->second.pop_front();
        }
      }
      if (req.matched) {
        max_arrival = std::max(max_arrival, req.arrival);
      } else {
        all = false;
      }
    }
    return all;
  }

  /// A new message for `rank` arrived: if it is blocked in waitall,
  /// recompute its readiness (and complete it if already due).
  void notify_receiver(std::size_t rank) {
    RankRt& rt = ranks_[rank];
    if (rt.state != RunState::kAtWaitAll) return;
    SimTime max_arrival = 0.0;
    if (match_all(rank, max_arrival)) {
      rt.ready_at = std::max(max_arrival, now_);
      if (rt.ready_at <= now_ + kTimeEps) complete_block(rank);
    }
  }

  /// The rank's blocking condition is satisfied: advance past the phase.
  void complete_block(std::size_t rank) {
    RankRt& rt = ranks_[rank];
    switch (rt.state) {
      case RunState::kComputing:
        break;
      case RunState::kDelaying:
        break;
      case RunState::kAtBarrier:
        ++rt.epochs;
        break;
      case RunState::kAtWaitAll:
        rt.posted.clear();
        ++rt.epochs;
        break;
      case RunState::kDone:
        return;
    }
    rt.ready_at = kInf;
    ++rt.phase;
    advance_rank(rank);
  }

  /// The rank arrives at a global collective; when the last participant
  /// arrives, everyone is released after `release_cost` (the collective
  /// sequences are identical across ranks — validated — so every arriver
  /// passes the same cost).
  ///
  /// Zero-cost releases are drained iteratively: completing a rank can
  /// bring it straight to the *next* barrier (back-to-back collectives),
  /// which re-enters this function and mutates barrier_arrived_. Naively
  /// completing ranks inside the loop over ranks_ therefore recursed once
  /// per consecutive zero-cost collective (unbounded stack depth) while
  /// iterating state it was mutating. Instead, releasable ranks are
  /// collected into release_queue_ and drained only by the outermost call;
  /// re-entrant arrivals just append to the queue.
  void arrive_collective(std::size_t rank, SimTime release_cost) {
    RankRt& rt = ranks_[rank];
    rt.state = RunState::kAtBarrier;
    rt.ready_at = kInf;
    set_trace(rank, trace::RankState::kSync);
    if (++barrier_arrived_ < ranks_.size()) return;
    barrier_arrived_ = 0;
    const SimTime release = now_ + release_cost;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      if (ranks_[r].state == RunState::kAtBarrier) {
        ranks_[r].ready_at = release;
      }
    }
    if (release > now_ + kTimeEps) return;  // the event loop releases later
    // Zero-cost collective: snapshot the releasable ranks first, then
    // complete them (a completion may invalidate a queued entry — e.g.
    // advance the rank to the next barrier — so re-check at pop time).
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      if (ranks_[r].state == RunState::kAtBarrier &&
          ranks_[r].ready_at <= now_ + kTimeEps) {
        release_queue_.push_back(r);
      }
    }
    if (releasing_) return;  // the outermost arrive_collective drains
    releasing_ = true;
    for (std::size_t i = 0; i < release_queue_.size(); ++i) {
      const std::size_t r = release_queue_[i];
      if (ranks_[r].state == RunState::kAtBarrier &&
          ranks_[r].ready_at <= now_ + kTimeEps) {
        complete_block(r);
      }
    }
    release_queue_.clear();
    releasing_ = false;
  }

  /// Executes phases from the rank's cursor until it blocks or finishes.
  void advance_rank(std::size_t rank) {
    RankRt& rt = ranks_[rank];
    const auto& phases = app_.ranks[rank].phases;

    while (true) {
      if (rt.phase >= phases.size()) {
        finish_rank(rank);
        return;
      }
      const Phase& phase = phases[rt.phase];

      if (const auto* compute = std::get_if<ComputePhase>(&phase)) {
        if (compute->instructions <= 0.0) {
          ++rt.phase;
          continue;
        }
        rt.state = RunState::kComputing;
        rt.remaining = compute->instructions;
        rt.kernel = compute->kernel;
        rt.compute_traced_as = compute->traced_as;
        set_trace(rank, compute->traced_as);
        return;
      }
      if (std::holds_alternative<BarrierPhase>(phase)) {
        arrive_collective(rank, config_.barrier_latency);
        return;
      }
      if (const auto* reduce = std::get_if<AllreducePhase>(&phase)) {
        // Reduce + broadcast over a binomial tree: 2*ceil(log2 N)
        // point-to-point steps after the last rank arrives.
        const double n = static_cast<double>(ranks_.size());
        const double steps = 2.0 * std::ceil(std::log2(std::max(n, 2.0)));
        const SimTime step_cost = network_.arrival_time(0.0, reduce->bytes);
        arrive_collective(rank, config_.barrier_latency + steps * step_cost);
        return;
      }
      if (const auto* send = std::get_if<SendPhase>(&phase)) {
        const auto key = std::tuple{static_cast<std::uint32_t>(rank),
                                    send->peer.value(), send->tag};
        messages_[key].push_back(network_.arrival_time(now_, send->bytes));
        ++rt.phase;
        notify_receiver(send->peer.value());
        continue;
      }
      if (const auto* recv = std::get_if<RecvPhase>(&phase)) {
        rt.posted.push_back(RecvReq{recv->peer.value(), recv->tag});
        ++rt.phase;
        continue;
      }
      if (std::holds_alternative<WaitAllPhase>(phase)) {
        SimTime max_arrival = 0.0;
        const bool all = match_all(rank, max_arrival);
        if (all && max_arrival <= now_ + kTimeEps) {
          rt.posted.clear();
          ++rt.epochs;
          ++rt.phase;
          continue;
        }
        rt.state = RunState::kAtWaitAll;
        rt.ready_at = all ? std::max(max_arrival, now_) : kInf;
        set_trace(rank, trace::RankState::kSync);
        return;
      }
      if (const auto* delay = std::get_if<DelayPhase>(&phase)) {
        if (delay->duration <= 0.0) {
          ++rt.phase;
          continue;
        }
        rt.state = RunState::kDelaying;
        rt.delay_until = now_ + delay->duration;
        rt.delay_traced_as = delay->traced_as;
        set_trace(rank, delay->traced_as);
        return;
      }
      SMTBAL_CHECK_MSG(false, "unhandled phase variant");
    }
  }

  /// Current chip load: what every context runs right now.
  [[nodiscard]] smt::ChipLoad build_load() const {
    smt::ChipLoad load;
    for (std::uint32_t ctx = 0; ctx < config_.chip.num_contexts(); ++ctx) {
      const CpuId cpu = config_.chip.cpu(ctx);
      if (!kernel_.process_on(cpu).has_value()) continue;  // idle context
      const int rank = rank_on_linear_[ctx];
      SMTBAL_CHECK(rank >= 0);
      const RankRt& rt = ranks_[static_cast<std::size_t>(rank)];
      const bool computing = rt.state == RunState::kComputing &&
                             !preempted(static_cast<std::size_t>(rank));
      load.contexts[ctx] = smt::ContextLoad{
          computing ? rt.kernel : spin_kernel_,
          kernel_.effective_priority(cpu)};
    }
    return load;
  }

  void advance_time(SimTime t, const smt::SampleResult& rates) {
    const SimTime dt = t - now_;
    if (dt <= 0.0) {
      now_ = std::max(now_, t);
      return;
    }
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      RankRt& rt = ranks_[r];
      switch (rt.state) {
        case RunState::kComputing:
          if (!preempted(r)) {
            rt.remaining -= rates.instr_rate[linear_of(r)] * dt;
            rt.acc_compute += dt;
          }
          break;
        case RunState::kAtBarrier:
        case RunState::kAtWaitAll:
          rt.acc_wait += dt;
          break;
        case RunState::kDelaying:
        case RunState::kDone:
          break;
      }
    }
    now_ = t;
  }

  void process_noise() {
    while (noise_idx_ < noise_.size() &&
           noise_[noise_idx_].start <= now_ + kTimeEps) {
      const os::NoiseEvent& event = noise_[noise_idx_++];
      kernel_.on_interrupt(event.cpu);
      const std::uint32_t lin = event.cpu.linear(smt::kThreadsPerCore);
      if (lin >= preempt_until_.size()) continue;
      preempt_until_[lin] = std::max(preempt_until_[lin], event.end());
      const int rank = rank_on_linear_[lin];
      if (rank >= 0 && ranks_[static_cast<std::size_t>(rank)].state !=
                           RunState::kDone) {
        set_trace(static_cast<std::size_t>(rank),
                  trace::RankState::kPreempted);
      }
    }
    // Expire finished preemptions and restore trace states.
    for (std::uint32_t lin = 0; lin < preempt_until_.size(); ++lin) {
      if (preempt_until_[lin] > 0.0 && preempt_until_[lin] <= now_ + kTimeEps) {
        preempt_until_[lin] = 0.0;
        const int rank = rank_on_linear_[lin];
        if (rank >= 0) {
          const RankRt& rt = ranks_[static_cast<std::size_t>(rank)];
          if (rt.state != RunState::kDone) {
            set_trace(static_cast<std::size_t>(rank), base_trace(rt));
          }
        }
      }
    }
  }

  void check_epochs() {
    // Finished ranks hold their final epoch count, so the global epoch
    // keeps advancing (and the last epoch gets reported) as ranks exit.
    int min_epochs = std::numeric_limits<int>::max();
    for (const RankRt& rt : ranks_) {
      min_epochs = std::min(min_epochs, rt.epochs);
    }
    if (min_epochs == std::numeric_limits<int>::max() ||
        min_epochs <= reported_epochs_) {
      return;
    }
    reported_epochs_ = min_epochs;

    EpochReport report;
    report.epoch = reported_epochs_;
    report.now = now_;
    report.ranks.reserve(ranks_.size());
    for (RankRt& rt : ranks_) {
      report.ranks.push_back(RankEpochStats{rt.acc_compute, rt.acc_wait});
      rt.acc_compute = 0.0;
      rt.acc_wait = 0.0;
    }
    if (policy_ != nullptr) policy_->on_epoch(control_, report);
  }

  [[noreturn]] void deadlock() const {
    std::ostringstream os;
    os << "MPI application deadlocked at t=" << now_ << "s; rank states:";
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      os << " P" << (r + 1) << "=" << to_string(ranks_[r].state)
         << "(phase " << ranks_[r].phase << ")";
    }
    throw SimulationError(os.str());
  }

  const Application& app_;
  const Placement& placement_;
  const EngineConfig& config_;
  smt::ThroughputSampler& sampler_;
  os::KernelModel& kernel_;
  const std::vector<Pid>& pids_;
  BalancePolicy* policy_;
  EngineControl& control_;

  trace::Tracer tracer_;
  std::vector<RankRt> ranks_;
  isa::KernelId spin_kernel_;
  Network network_{NetworkConfig{}};
  std::vector<int> rank_on_linear_;
  std::vector<SimTime> preempt_until_;
  std::vector<os::NoiseEvent> noise_;
  std::size_t noise_idx_ = 0;
  std::map<std::tuple<std::uint32_t, std::uint32_t, int>, std::deque<SimTime>>
      messages_;
  std::size_t barrier_arrived_ = 0;
  /// Ranks releasable from a zero-cost collective; drained iteratively by
  /// the outermost arrive_collective (see its comment).
  std::vector<std::size_t> release_queue_;
  bool releasing_ = false;
  std::size_t done_count_ = 0;
  int reported_epochs_ = 0;
  SimTime now_ = 0.0;
  std::uint64_t events_ = 0;
};

RunResult Sim::run() {
  network_ = Network(config_.network);

  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (ranks_[r].state != RunState::kDone) advance_rank(r);
  }
  check_epochs();

  while (!all_done()) {
    SMTBAL_CHECK_MSG(++events_ <= config_.max_events,
                     "engine exceeded max_events — runaway simulation?");
    SMTBAL_CHECK_MSG(now_ <= config_.max_sim_time,
                     "engine exceeded max_sim_time");

    const smt::ChipLoad load = build_load();
    const smt::SampleResult& rates = sampler_.sample(load);

    SimTime next = kInf;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      const RankRt& rt = ranks_[r];
      switch (rt.state) {
        case RunState::kComputing:
          if (!preempted(r)) {
            const double rate = rates.instr_rate[linear_of(r)];
            if (rate > 0.0) next = std::min(next, now_ + rt.remaining / rate);
          }
          break;
        case RunState::kDelaying:
          next = std::min(next, rt.delay_until);
          break;
        case RunState::kAtBarrier:
        case RunState::kAtWaitAll:
          next = std::min(next, rt.ready_at);
          break;
        case RunState::kDone:
          break;
      }
    }
    if (noise_idx_ < noise_.size()) {
      next = std::min(next, noise_[noise_idx_].start);
    }
    for (const SimTime until : preempt_until_) {
      if (until > now_ + kTimeEps) next = std::min(next, until);
    }

    if (!(next < kInf)) deadlock();

    advance_time(std::max(next, now_), rates);
    process_noise();

    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      RankRt& rt = ranks_[r];
      switch (rt.state) {
        case RunState::kComputing:
          // A residual worth less than a nanosecond of work is rounding
          // noise from the remaining -= rate*dt updates, not real work.
          if (!preempted(r) &&
              (rt.remaining <= kInstrEps ||
               rt.remaining <= rates.instr_rate[linear_of(r)] * 1e-9)) {
            complete_block(r);
          }
          break;
        case RunState::kDelaying:
          if (rt.delay_until <= now_ + kTimeEps) complete_block(r);
          break;
        case RunState::kAtBarrier:
        case RunState::kAtWaitAll:
          if (rt.ready_at <= now_ + kTimeEps) complete_block(r);
          break;
        case RunState::kDone:
          break;
      }
    }
    check_epochs();
  }

  // Flush trailing trace intervals and close the trace.
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    set_trace(r, trace::RankState::kDone);
  }
  tracer_.finish(now_);

  const double imbalance = tracer_.imbalance();
  return RunResult{std::move(tracer_), now_,    imbalance,
                   events_,            kernel_.priority_resets(),
                   sampler_.stats()};
}

}  // namespace

Engine::Engine(Application app, Placement placement, EngineConfig config)
    : Engine(std::move(app), std::move(placement), config,
             std::make_shared<smt::ThroughputSampler>(config.chip,
                                                      config.sampler)) {}

Engine::Engine(Application app, Placement placement, EngineConfig config,
               std::shared_ptr<smt::ThroughputSampler> sampler)
    : app_(std::move(app)),
      placement_(std::move(placement)),
      config_(std::move(config)),
      sampler_(std::move(sampler)),
      kernel_(config_.kernel_flavor, config_.chip) {
  SMTBAL_REQUIRE(sampler_ != nullptr, "sampler must not be null");
  SMTBAL_REQUIRE(placement_.cpu_of_rank.size() == app_.size(),
                 "placement size must match rank count");
  app_.validate();
}

void Engine::set_rank_priority(RankId rank, int priority) {
  SMTBAL_REQUIRE(!pid_of_rank_.empty(),
                 "set_rank_priority is only valid from policy hooks "
                 "(processes not spawned yet)");
  SMTBAL_REQUIRE(rank.value() < pid_of_rank_.size(), "rank out of range");
  const Pid pid = pid_of_rank_[rank.value()];
  // A rank that already exited has no process to re-prioritise (its
  // /proc/<pid>/hmt_priority file is gone); ignore, as a userspace
  // balancer racing process exit would experience.
  const CpuId cpu = placement_.cpu_of_rank[rank.value()];
  if (kernel_.process_on(cpu) != std::optional<Pid>(pid)) return;
  if (kernel_.flavor() == os::KernelFlavor::kPatched) {
    kernel_.write_hmt_priority(pid, priority);
  } else {
    // Vanilla kernel: userspace can only use the or-nop interface, which
    // is limited to priorities 2..4 (paper Table I).
    kernel_.set_priority_ornop(pid, smt::priority_from_int(priority),
                               smt::PrivilegeLevel::kUser);
  }
}

int Engine::rank_priority(RankId rank) const {
  SMTBAL_REQUIRE(rank.value() < placement_.cpu_of_rank.size(),
                 "rank out of range");
  return smt::level(
      kernel_.effective_priority(placement_.cpu_of_rank[rank.value()]));
}

RunResult Engine::run() {
  SMTBAL_REQUIRE(!ran_, "Engine::run() may be called only once");
  ran_ = true;

  for (std::size_t r = 0; r < app_.size(); ++r) {
    pid_of_rank_.push_back(kernel_.spawn(placement_.cpu_of_rank[r]));
  }
  if (policy_ != nullptr) policy_->on_start(*this);

  Sim sim(app_, placement_, config_, *sampler_, kernel_, pid_of_rank_,
          policy_, *this);
  return sim.run();
}

}  // namespace smtbal::mpisim
