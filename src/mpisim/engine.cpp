#include "mpisim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "mpisim/sim.hpp"

namespace smtbal::mpisim {

void EngineConfig::validate() const {
  chip.validate();
  network.validate();
  if (chip.num_contexts() > smt::kMaxContexts) {
    std::ostringstream os;
    os << "EngineConfig.chip has " << chip.num_contexts()
       << " contexts but the sampler supports at most " << smt::kMaxContexts
       << " (smt::kMaxContexts); split the machine into cluster nodes "
          "(cluster::ClusterEngine) or shrink the chip";
    throw InvalidArgument(os.str());
  }
  SMTBAL_REQUIRE(std::isfinite(max_sim_time) && max_sim_time > 0.0,
                 "EngineConfig.max_sim_time must be positive and finite");
  SMTBAL_REQUIRE(max_events > 0, "EngineConfig.max_events must be positive");
  SMTBAL_REQUIRE(std::isfinite(barrier_latency) && barrier_latency >= 0.0,
                 "EngineConfig.barrier_latency must be non-negative and "
                 "finite");
  SMTBAL_REQUIRE(std::isfinite(noise_horizon) && noise_horizon >= 0.0,
                 "EngineConfig.noise_horizon must be non-negative and finite");
  try {
    (void)isa::KernelRegistry::instance().by_name(spin_kernel);
  } catch (const std::exception&) {
    throw InvalidArgument("EngineConfig.spin_kernel '" + spin_kernel +
                          "' is not a registered kernel");
  }
}

namespace {

std::shared_ptr<smt::ThroughputSampler> make_own_sampler(
    const EngineConfig& config) {
  // Validate before the sampler touches the chip config so a broken
  // configuration fails with a structured error from either constructor.
  config.validate();
  return std::make_shared<smt::ThroughputSampler>(config.chip, config.sampler);
}

}  // namespace

Engine::Engine(Application app, Placement placement, EngineConfig config)
    : Engine(std::move(app), std::move(placement), config,
             make_own_sampler(config)) {}

Engine::Engine(Application app, Placement placement, EngineConfig config,
               std::shared_ptr<smt::ThroughputSampler> sampler)
    : app_(std::move(app)),
      placement_(std::move(placement)),
      config_(std::move(config)),
      sampler_(std::move(sampler)),
      kernel_(config_.kernel_flavor, config_.chip) {
  config_.validate();
  SMTBAL_REQUIRE(sampler_ != nullptr, "sampler must not be null");
  SMTBAL_REQUIRE(placement_.cpu_of_rank.size() == app_.size(),
                 "placement size must match rank count");
  for (const CpuId& cpu : placement_.cpu_of_rank) {
    SMTBAL_REQUIRE(cpu.linear(config_.chip.threads_per_core()) <
                       config_.chip.num_contexts(),
                   "placement assigns a rank to a CPU beyond "
                   "chip.num_contexts()");
    // linear() folds an out-of-range slot onto another core's context;
    // reject the alias instead of silently double-booking that seat.
    SMTBAL_REQUIRE(cpu.slot.value() < config_.chip.threads_per_core(),
                   "placement assigns a rank to an SMT slot beyond "
                   "chip.threads_per_core()");
  }
  app_.validate();
}

void Engine::add_observer(SimObserver* observer) {
  SMTBAL_REQUIRE(observer != nullptr, "observer must not be null");
  SMTBAL_REQUIRE(!ran_, "add_observer must be called before run()");
  observers_.push_back(observer);
}

void Engine::check_rank(RankId rank, const char* who) const {
  if (rank.value() >= app_.size()) {
    throw InvalidArgument(std::string(who) + ": rank out of range — got rank " +
                          std::to_string(rank.value()) + ", have " +
                          std::to_string(app_.size()) + " rank(s)");
  }
}

int Engine::priority_sum() const {
  int sum = 0;
  for (std::uint32_t ctx = 0; ctx < config_.chip.num_contexts(); ++ctx) {
    const CpuId cpu = config_.chip.cpu(ctx);
    if (!kernel_.process_on(cpu).has_value()) continue;
    sum += smt::level(kernel_.effective_priority(cpu));
  }
  return sum;
}

void Engine::set_rank_priority(RankId rank, int priority) {
  SMTBAL_REQUIRE(!pid_of_rank_.empty(),
                 "set_rank_priority is only valid from policy hooks "
                 "(processes not spawned yet)");
  check_rank(rank, "set_rank_priority");
  const Pid pid = pid_of_rank_[rank.value()];
  // A rank that already exited has no process to re-prioritise (its
  // /proc/<pid>/hmt_priority file is gone); ignore, as a userspace
  // balancer racing process exit would experience.
  const CpuId cpu = placement_.cpu_of_rank[rank.value()];
  if (kernel_.process_on(cpu) != std::optional<Pid>(pid)) return;
  const int before = smt::level(kernel_.effective_priority(cpu));
  if (!budgets_.empty()) {
    const int sum = priority_sum();
    if (sum - before + priority > budgets_[0]) {
      throw InvalidArgument(
          "set_rank_priority: raising rank " + std::to_string(rank.value()) +
          " from " + std::to_string(before) + " to " +
          std::to_string(priority) + " would push the node's priority sum to " +
          std::to_string(sum - before + priority) + ", over its budget of " +
          std::to_string(budgets_[0]));
    }
  }
  if (kernel_.flavor() == os::KernelFlavor::kPatched) {
    kernel_.write_hmt_priority(pid, priority);
  } else {
    // Vanilla kernel: userspace can only use the or-nop interface, which
    // is limited to priorities 2..4 (paper Table I).
    kernel_.set_priority_ornop(pid, smt::priority_from_int(priority),
                               smt::PrivilegeLevel::kUser);
  }
  const int after = smt::level(kernel_.effective_priority(cpu));
  // The Sim exists for the whole window in which policy hooks may fire
  // (run() builds it before on_start), so the notification always flows
  // through it and carries the real simulation time.
  if (after != before && sim_ != nullptr) {
    sim_->notify_priority_change(rank, before, after);
  }
}

int Engine::rank_priority(RankId rank) const {
  check_rank(rank, "rank_priority");
  return smt::level(
      kernel_.effective_priority(placement_.cpu_of_rank[rank.value()]));
}

void Engine::move_rank(RankId rank, CpuId to) {
  SMTBAL_REQUIRE(!pid_of_rank_.empty(),
                 "move_rank is only valid from policy hooks "
                 "(processes not spawned yet)");
  check_rank(rank, "move_rank");
  if (to.linear(config_.chip.threads_per_core()) >=
          config_.chip.num_contexts() ||
      to.slot.value() >= config_.chip.threads_per_core()) {
    throw InvalidArgument(
        "move_rank: target (core " + std::to_string(to.core.value()) +
        ", slot " + std::to_string(to.slot.value()) +
        ") is beyond the chip's " +
        std::to_string(config_.chip.num_contexts()) + " contexts (" +
        std::to_string(config_.chip.threads_per_core()) + "-way SMT)");
  }
  const Pid pid = pid_of_rank_[rank.value()];
  const CpuId from = placement_.cpu_of_rank[rank.value()];
  // An exited rank has no process to migrate; ignore, like
  // set_rank_priority racing process exit.
  if (kernel_.process_on(from) != std::optional<Pid>(pid)) return;
  if (from == to) return;
  kernel_.migrate(pid, to);  // throws (value-bearing) on an occupied seat
  placement_.cpu_of_rank[rank.value()] = to;
  if (sim_ != nullptr) sim_->notify_placement_change(rank, from, to);
}

void Engine::swap_ranks(RankId a, RankId b) {
  SMTBAL_REQUIRE(!pid_of_rank_.empty(),
                 "swap_ranks is only valid from policy hooks "
                 "(processes not spawned yet)");
  check_rank(a, "swap_ranks");
  check_rank(b, "swap_ranks");
  if (a == b) return;
  const CpuId cpu_a = placement_.cpu_of_rank[a.value()];
  const CpuId cpu_b = placement_.cpu_of_rank[b.value()];
  // A pair with an exited member is ignored, like set_rank_priority
  // racing process exit.
  if (kernel_.process_on(cpu_a) != std::optional<Pid>(pid_of_rank_[a.value()]) ||
      kernel_.process_on(cpu_b) != std::optional<Pid>(pid_of_rank_[b.value()])) {
    return;
  }
  kernel_.swap_processes(pid_of_rank_[a.value()], pid_of_rank_[b.value()]);
  placement_.cpu_of_rank[a.value()] = cpu_b;
  placement_.cpu_of_rank[b.value()] = cpu_a;
  if (sim_ != nullptr) {
    sim_->notify_placement_change(a, cpu_a, cpu_b);
    sim_->notify_placement_change(b, cpu_b, cpu_a);
  }
}

void Engine::migrate_rank(RankId rank, std::uint32_t node, CpuId to) {
  // The flat engine is one node: migration degrades to an intra-node
  // move, which keeps M=1 cluster runs and flat runs behaviourally
  // identical for migration-aware policies.
  if (node >= 1) {
    throw InvalidArgument("migrate_rank: node " + std::to_string(node) +
                          " out of range — the flat engine is one node");
  }
  move_rank(rank, to);
}

void Engine::install_budgets(int per_node_budget) {
  const int sum = priority_sum();
  if (per_node_budget < sum) {
    throw InvalidArgument(
        "install_budgets: node 0's current priority sum is " +
        std::to_string(sum) + ", over the requested budget of " +
        std::to_string(per_node_budget));
  }
  budgets_.assign(1, per_node_budget);
}

void Engine::transfer_budget(std::uint32_t from, std::uint32_t to,
                             int amount) {
  SMTBAL_REQUIRE(!budgets_.empty(),
                 "transfer_budget requires install_budgets() first");
  if (from >= 1 || to >= 1) {
    throw InvalidArgument("transfer_budget: node " +
                          std::to_string(std::max(from, to)) +
                          " out of range — the flat engine is one node");
  }
  SMTBAL_REQUIRE(amount >= 0, "transfer_budget: amount must be >= 0");
  // from == to on a single node: conserved trivially, nothing to do.
}

int Engine::node_budget(std::uint32_t node) const {
  if (node >= 1) {
    throw InvalidArgument("node_budget: node " + std::to_string(node) +
                          " out of range — the flat engine is one node");
  }
  return budgets_.empty() ? kUnlimitedBudget : budgets_[0];
}

RunResult Engine::run() {
  SMTBAL_REQUIRE(!ran_, "Engine::run() may be called only once");
  ran_ = true;

  ObserverBus bus;
  for (SimObserver* observer : observers_) bus.attach(observer);
  TraceObserver trace_observer(app_.size());
  MetricsObserver metrics_observer(app_.size());
  PolicyObserver policy_observer(policy_, *this);
  bus.attach(&trace_observer);
  bus.attach(&metrics_observer);
  if (policy_ != nullptr) bus.attach(&policy_observer);

  // Reset the live-run notification targets however run() exits.
  struct ActiveRun {
    Engine& engine;
    ~ActiveRun() {
      engine.sim_ = nullptr;
      engine.active_bus_ = nullptr;
    }
  } active{*this};
  active_bus_ = &bus;

  for (std::size_t r = 0; r < app_.size(); ++r) {
    pid_of_rank_.push_back(kernel_.spawn(placement_.cpu_of_rank[r]));
  }

  // The flat engine is a one-node cluster: a single NodeCtx, every rank on
  // node 0, intra-node costs for every transfer. The Sim is built before
  // the policy's on_start fires so pre-run actuations (priorities, seat
  // moves) flow through the same notify paths as mid-run ones and
  // observers see consistent (t = 0) timestamps.
  std::vector<detail::NodeCtx> nodes{{&config_.chip, sampler_.get(), &kernel_}};
  const std::vector<std::uint32_t> node_of_rank(app_.size(), 0);
  NetworkCostModel cost(config_.network);
  detail::Sim sim(app_, placement_, node_of_rank, config_, std::move(nodes),
                  cost, pid_of_rank_, bus);
  sim_ = &sim;

  bus.notify_start(app_.size());
  if (policy_ != nullptr) policy_->on_start(*this);
  const detail::RunStats stats = sim.run();

  RunResult result;
  result.trace = trace_observer.take();
  result.exec_time = stats.end_time;
  result.imbalance = result.trace.imbalance();
  result.events = stats.events;
  result.priority_resets = kernel_.priority_resets();
  result.sampler_stats = sampler_->stats();
  result.metrics = metrics_observer.take();
  return result;
}

}  // namespace smtbal::mpisim
