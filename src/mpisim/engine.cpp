#include "mpisim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/event_queue.hpp"
#include "mpisim/rank_state.hpp"

namespace smtbal::mpisim {

namespace detail {

namespace {
constexpr SimTime kTimeEps = 1e-12;
}  // namespace

struct RunStats {
  SimTime end_time = 0.0;
  std::uint64_t events = 0;
};

/// The whole per-run simulation state; Engine::run() builds one, runs it,
/// and composes the result from the observers.
///
/// The run is a pure event loop: rank completions are *predicted* into the
/// event queue (compute finish times from the piecewise-constant rates,
/// delay ends, message arrivals, barrier releases, noise windows) and
/// popped in (time, seq) order. A prediction invalidated by a rate change
/// or preemption is not searched for in the heap; the rank's generation
/// counter is bumped and the stale entry is discarded when it surfaces.
class Sim final : public CollectiveClient {
 public:
  Sim(const Application& app, const Placement& placement,
      const EngineConfig& config, smt::ThroughputSampler& sampler,
      os::KernelModel& kernel, const std::vector<Pid>& pids, ObserverBus& bus)
      : app_(app),
        placement_(placement),
        config_(config),
        sampler_(sampler),
        kernel_(kernel),
        pids_(pids),
        bus_(bus),
        ranks_(app.size()),
        spin_kernel_(
            isa::KernelRegistry::instance().by_name(config.spin_kernel).id),
        network_(config.network),
        collectives_(app.size()) {
    const std::uint32_t contexts = config_.chip.num_contexts();
    rank_on_linear_.assign(contexts, -1);
    preempt_until_.assign(contexts, 0.0);
    for (std::size_t r = 0; r < app.size(); ++r) {
      rank_on_linear_[linear_of(r)] = static_cast<int>(r);
    }
    if (config_.noise_horizon > 0.0) {
      noise_ = os::NoiseSource(config_.noise, config_.noise_horizon, contexts,
                               config_.chip.threads_per_core());
    }
  }

  RunStats run();

  [[nodiscard]] SimTime now() const { return now_; }

  /// Engine::set_rank_priority landed while the run is live: publish the
  /// change (the next refresh_rates() re-derives the affected rates).
  void notify_priority_change(RankId rank, int from, int to) {
    emit_meta(EventKind::kPriorityChange, rank.value());
    bus_.notify_priority_change(rank, from, to, now_);
  }

 private:
  [[nodiscard]] std::uint32_t linear_of(std::size_t rank) const {
    return placement_.cpu_of_rank[rank].linear(config_.chip.threads_per_core());
  }
  [[nodiscard]] bool preempted(std::size_t rank) const {
    return preempt_until_[linear_of(rank)] > now_ + kTimeEps;
  }
  [[nodiscard]] bool all_done() const { return done_count_ == ranks_.size(); }

  void set_trace(std::size_t rank, trace::RankState state) {
    RankRt& rt = ranks_[rank];
    if (rt.shown == state) return;
    if (now_ > rt.state_since && rt.shown != trace::RankState::kDone) {
      bus_.notify_interval(RankId{static_cast<std::uint32_t>(rank)},
                           rt.state_since, now_, rt.shown);
    }
    rt.state_since = now_;
    rt.shown = state;
  }

  /// Publishes a synthesized (never-queued) event to the observers.
  void emit_meta(EventKind kind, std::uint32_t subject) {
    Event event;
    event.time = now_;
    event.kind = kind;
    event.subject = subject;
    bus_.notify_event(event);
  }

  void finish_rank(std::size_t rank) {
    RankRt& rt = ranks_[rank];
    rt.state = RunState::kDone;
    set_trace(rank, trace::RankState::kDone);
    kernel_.exit_process(pids_[rank]);
    ++done_count_;
  }

  /// Materialises the rank's compute progress up to now_ (the segment
  /// boundary of the piecewise-constant integration).
  void accrue(std::size_t rank) {
    RankRt& rt = ranks_[rank];
    const SimTime dt = now_ - rt.accrued_at;
    if (dt > 0.0) {
      rt.remaining -= rt.rate * dt;
      rt.acc_compute += dt;
    }
    rt.accrued_at = now_;
  }

  /// Starts a fresh integration segment at `rate` and predicts the
  /// completion into the queue (no prediction for a starved rate, exactly
  /// as the rescan loop had no next-event candidate for it).
  void start_segment(std::size_t rank, double rate) {
    RankRt& rt = ranks_[rank];
    rt.rate = rate;
    rt.accrued_at = now_;
    ++rt.compute_gen;
    rt.pred_valid = false;
    if (rate > 0.0) {
      queue_.push(now_ + rt.remaining / rate, EventKind::kComputeDone,
                  static_cast<std::uint32_t>(rank), rt.compute_gen);
      rt.pred_valid = true;
    }
  }

  /// Drops a queued compute prediction (rate change, preemption) without
  /// touching the heap: the generation bump makes the queued entry stale.
  void invalidate_prediction(std::size_t rank) {
    RankRt& rt = ranks_[rank];
    rt.pred_valid = false;
    ++rt.compute_gen;
  }

  /// Re-derives rates if the chip load changed, and (re-)predicts
  /// completions — but only for the contexts whose sampled rate actually
  /// changed or that started a fresh compute segment; everyone else's
  /// queued prediction stays valid.
  void refresh_rates() {
    const smt::ChipLoad load = build_load();
    const std::uint64_t key = load.key();
    if (have_rates_ && key == load_key_) {
      for (const std::size_t r : fresh_compute_) {
        RankRt& rt = ranks_[r];
        if (rt.state != RunState::kComputing || rt.pred_valid || preempted(r)) {
          continue;
        }
        start_segment(r, rates_.instr_rate[linear_of(r)]);
      }
      fresh_compute_.clear();
      return;
    }
    load_key_ = key;
    have_rates_ = true;
    // Copy, not reference: the sampler's map may rehash on later misses.
    rates_ = sampler_.sample(load);
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      RankRt& rt = ranks_[r];
      if (rt.state != RunState::kComputing || preempted(r)) continue;
      const double rate = rates_.instr_rate[linear_of(r)];
      if (!rt.pred_valid) {
        start_segment(r, rate);
      } else if (rate != rt.rate) {
        accrue(r);
        start_segment(r, rate);
      }
    }
    fresh_compute_.clear();
  }

  /// Current chip load: what every context runs right now.
  [[nodiscard]] smt::ChipLoad build_load() const {
    smt::ChipLoad load;
    for (std::uint32_t ctx = 0; ctx < config_.chip.num_contexts(); ++ctx) {
      const CpuId cpu = config_.chip.cpu(ctx);
      if (!kernel_.process_on(cpu).has_value()) continue;  // idle context
      const int rank = rank_on_linear_[ctx];
      SMTBAL_CHECK(rank >= 0);
      const RankRt& rt = ranks_[static_cast<std::size_t>(rank)];
      const bool computing = rt.state == RunState::kComputing &&
                             !preempted(static_cast<std::size_t>(rank));
      load.contexts[ctx] = smt::ContextLoad{
          computing ? rt.kernel : spin_kernel_,
          kernel_.effective_priority(cpu)};
    }
    return load;
  }

  /// A message for `rank` arrived: if it is blocked in waitall, recompute
  /// its readiness (and complete it if already due).
  void notify_receiver(std::size_t rank) {
    RankRt& rt = ranks_[rank];
    if (rt.state != RunState::kAtWaitAll) return;
    SimTime max_arrival = 0.0;
    if (collectives_.match_all(static_cast<std::uint32_t>(rank), rt.posted,
                               max_arrival)) {
      rt.ready_at = std::max(max_arrival, now_);
      if (rt.ready_at <= now_ + kTimeEps) complete_block(rank);
    }
  }

  /// The rank's blocking condition is satisfied: advance past the phase.
  void complete_block(std::size_t rank) {
    RankRt& rt = ranks_[rank];
    switch (rt.state) {
      case RunState::kComputing:
        break;
      case RunState::kDelaying:
        break;
      case RunState::kAtBarrier:
        rt.acc_wait += now_ - rt.wait_since;
        ++rt.epochs;
        epochs_dirty_ = true;
        break;
      case RunState::kAtWaitAll:
        rt.acc_wait += now_ - rt.wait_since;
        rt.posted.clear();
        ++rt.epochs;
        epochs_dirty_ = true;
        break;
      case RunState::kDone:
        return;
    }
    rt.ready_at = kSimInf;
    ++rt.phase;
    advance_rank(rank);
  }

  // CollectiveClient: a due collective releases this rank.
  void release_rank(std::size_t rank) override { complete_block(rank); }

  /// The rank arrives at a global collective; when the last participant
  /// arrives, everyone is released after `release_cost` (the collective
  /// sequences are identical across ranks — validated — so every arriver
  /// passes the same cost). A costed release is scheduled as a single
  /// kBarrierRelease event; a zero-cost release drains inline through the
  /// collectives module's re-entrant-safe queue.
  void arrive_collective(std::size_t rank, SimTime release_cost) {
    RankRt& rt = ranks_[rank];
    rt.state = RunState::kAtBarrier;
    rt.ready_at = kSimInf;
    rt.wait_since = now_;
    set_trace(rank, trace::RankState::kSync);
    if (!collectives_.arrive()) return;
    const SimTime release = now_ + release_cost;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      if (ranks_[r].state == RunState::kAtBarrier) {
        ranks_[r].ready_at = release;
      }
    }
    if (release > now_ + kTimeEps) {
      queue_.push(release, EventKind::kBarrierRelease);
      return;
    }
    collectives_.release_due(now_, kTimeEps, ranks_, *this);
  }

  /// Executes phases from the rank's cursor until it blocks or finishes.
  void advance_rank(std::size_t rank) {
    RankRt& rt = ranks_[rank];
    const auto& phases = app_.ranks[rank].phases;

    while (true) {
      if (rt.phase >= phases.size()) {
        finish_rank(rank);
        return;
      }
      const Phase& phase = phases[rt.phase];

      if (const auto* compute = std::get_if<ComputePhase>(&phase)) {
        if (compute->instructions <= 0.0) {
          ++rt.phase;
          continue;
        }
        rt.state = RunState::kComputing;
        rt.remaining = compute->instructions;
        rt.kernel = compute->kernel;
        rt.compute_traced_as = compute->traced_as;
        invalidate_prediction(rank);
        fresh_compute_.push_back(rank);
        set_trace(rank, compute->traced_as);
        return;
      }
      if (std::holds_alternative<BarrierPhase>(phase)) {
        arrive_collective(rank, config_.barrier_latency);
        return;
      }
      if (const auto* reduce = std::get_if<AllreducePhase>(&phase)) {
        // Reduce + broadcast over a binomial tree: 2*ceil(log2 N)
        // point-to-point steps after the last rank arrives.
        const double n = static_cast<double>(ranks_.size());
        const double steps = 2.0 * std::ceil(std::log2(std::max(n, 2.0)));
        const SimTime step_cost = network_.arrival_time(0.0, reduce->bytes);
        arrive_collective(rank, config_.barrier_latency + steps * step_cost);
        return;
      }
      if (const auto* send = std::get_if<SendPhase>(&phase)) {
        const SimTime arrival = network_.arrival_time(now_, send->bytes);
        collectives_.post_send(static_cast<std::uint32_t>(rank),
                               send->peer.value(), send->tag, arrival);
        queue_.push(arrival, EventKind::kMsgArrival, send->peer.value(), 0,
                    MsgPayload{static_cast<std::uint32_t>(rank),
                               send->peer.value(), send->tag});
        ++rt.phase;
        continue;
      }
      if (const auto* recv = std::get_if<RecvPhase>(&phase)) {
        rt.posted.push_back(RecvReq{recv->peer.value(), recv->tag});
        ++rt.phase;
        continue;
      }
      if (std::holds_alternative<WaitAllPhase>(phase)) {
        SimTime max_arrival = 0.0;
        const bool all = collectives_.match_all(
            static_cast<std::uint32_t>(rank), rt.posted, max_arrival);
        if (all && max_arrival <= now_ + kTimeEps) {
          rt.posted.clear();
          ++rt.epochs;
          epochs_dirty_ = true;
          ++rt.phase;
          continue;
        }
        rt.state = RunState::kAtWaitAll;
        // A fully matched set with in-flight messages completes at the
        // last arrival; its kMsgArrival event is already queued and wakes
        // the rank. Unmatched receives wait for a future send.
        rt.ready_at = all ? std::max(max_arrival, now_) : kSimInf;
        rt.wait_since = now_;
        set_trace(rank, trace::RankState::kSync);
        return;
      }
      if (const auto* delay = std::get_if<DelayPhase>(&phase)) {
        if (delay->duration <= 0.0) {
          ++rt.phase;
          continue;
        }
        rt.state = RunState::kDelaying;
        rt.delay_until = now_ + delay->duration;
        rt.delay_traced_as = delay->traced_as;
        queue_.push(rt.delay_until, EventKind::kDelayDone,
                    static_cast<std::uint32_t>(rank));
        set_trace(rank, delay->traced_as);
        return;
      }
      SMTBAL_CHECK_MSG(false, "unhandled phase variant");
    }
  }

  /// Schedules the next pending OS-noise event (one outstanding at a
  /// time; the noise source is consumed in timeline order).
  void schedule_next_noise() {
    if (noise_.exhausted()) return;
    const os::NoiseEvent& event = noise_.peek();
    queue_.push(event.start, EventKind::kNoisePreempt,
                event.cpu.linear(config_.chip.threads_per_core()));
  }

  void on_noise_preempt() {
    const os::NoiseEvent event = noise_.next();
    schedule_next_noise();
    kernel_.on_interrupt(event.cpu);
    const std::uint32_t lin = event.cpu.linear(config_.chip.threads_per_core());
    if (lin >= preempt_until_.size()) return;
    const bool was_preempted = preempt_until_[lin] > now_ + kTimeEps;
    preempt_until_[lin] = std::max(preempt_until_[lin], event.end());
    queue_.push(preempt_until_[lin], EventKind::kNoiseResume, lin);
    const bool is_preempted = preempt_until_[lin] > now_ + kTimeEps;
    const int rank = rank_on_linear_[lin];
    if (rank < 0) return;
    RankRt& rt = ranks_[static_cast<std::size_t>(rank)];
    if (rt.state == RunState::kDone) return;
    if (!was_preempted && is_preempted &&
        rt.state == RunState::kComputing) {
      // Suspend the integration segment for the preemption window.
      accrue(static_cast<std::size_t>(rank));
      invalidate_prediction(static_cast<std::size_t>(rank));
    }
    set_trace(static_cast<std::size_t>(rank), trace::RankState::kPreempted);
  }

  void on_noise_resume(std::uint32_t lin) {
    preempt_until_[lin] = 0.0;
    const int rank = rank_on_linear_[lin];
    if (rank < 0) return;
    RankRt& rt = ranks_[static_cast<std::size_t>(rank)];
    if (rt.state != RunState::kDone) {
      set_trace(static_cast<std::size_t>(rank), base_trace(rt));
    }
    if (rt.state == RunState::kComputing && !rt.pred_valid) {
      // Resume the suspended segment; refresh_rates() predicts anew.
      fresh_compute_.push_back(static_cast<std::size_t>(rank));
    }
  }

  /// A queued event that no longer matches the simulation state (lazy
  /// invalidation): superseded compute predictions and noise resumes of
  /// preemption windows that were extended or already closed.
  [[nodiscard]] bool is_stale(const Event& event) const {
    switch (event.kind) {
      case EventKind::kComputeDone: {
        const RankRt& rt = ranks_[event.subject];
        return event.generation != rt.compute_gen ||
               rt.state != RunState::kComputing;
      }
      case EventKind::kNoiseResume:
        return preempt_until_[event.subject] == 0.0 ||
               preempt_until_[event.subject] > event.time + kTimeEps;
      default:
        return false;
    }
  }

  void dispatch(const Event& event) {
    switch (event.kind) {
      case EventKind::kComputeDone: {
        const std::size_t rank = event.subject;
        accrue(rank);
        invalidate_prediction(rank);
        complete_block(rank);
        break;
      }
      case EventKind::kDelayDone: {
        RankRt& rt = ranks_[event.subject];
        if (rt.state == RunState::kDelaying &&
            rt.delay_until <= now_ + kTimeEps) {
          complete_block(event.subject);
        }
        break;
      }
      case EventKind::kMsgArrival:
        notify_receiver(event.msg.dst);
        break;
      case EventKind::kBarrierRelease:
        collectives_.release_due(now_, kTimeEps, ranks_, *this);
        break;
      case EventKind::kNoisePreempt:
        on_noise_preempt();
        break;
      case EventKind::kNoiseResume:
        on_noise_resume(event.subject);
        break;
      case EventKind::kPriorityChange:
      case EventKind::kEpochEnd:
        break;  // meta kinds are never queued
    }
  }

  /// Reports a crossed epoch boundary (if any) to the observers; returns
  /// true when a report was emitted (a policy may have reacted).
  bool check_epochs() {
    epochs_dirty_ = false;
    // Finished ranks hold their final epoch count, so the global epoch
    // keeps advancing (and the last epoch gets reported) as ranks exit.
    int min_epochs = std::numeric_limits<int>::max();
    for (const RankRt& rt : ranks_) {
      min_epochs = std::min(min_epochs, rt.epochs);
    }
    if (min_epochs == std::numeric_limits<int>::max() ||
        min_epochs <= reported_epochs_) {
      return false;
    }
    reported_epochs_ = min_epochs;

    EpochReport report;
    report.epoch = reported_epochs_;
    report.now = now_;
    report.ranks.reserve(ranks_.size());
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      RankRt& rt = ranks_[r];
      // Materialise the lazy accumulators up to the snapshot point.
      if (rt.state == RunState::kComputing && !preempted(r)) {
        accrue(r);
      } else if (rt.state == RunState::kAtBarrier ||
                 rt.state == RunState::kAtWaitAll) {
        rt.acc_wait += now_ - rt.wait_since;
        rt.wait_since = now_;
      }
      report.ranks.push_back(RankEpochStats{rt.acc_compute, rt.acc_wait});
      rt.acc_compute = 0.0;
      rt.acc_wait = 0.0;
    }
    emit_meta(EventKind::kEpochEnd,
              static_cast<std::uint32_t>(report.epoch));
    bus_.notify_epoch(report);
    return true;
  }

  [[noreturn]] void deadlock() const {
    std::ostringstream os;
    os << "MPI application deadlocked at t=" << now_ << "s; rank states:";
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      os << " P" << (r + 1) << "=" << to_string(ranks_[r].state)
         << "(phase " << ranks_[r].phase << ")";
    }
    throw SimulationError(os.str());
  }

  const Application& app_;
  const Placement& placement_;
  const EngineConfig& config_;
  smt::ThroughputSampler& sampler_;
  os::KernelModel& kernel_;
  const std::vector<Pid>& pids_;
  ObserverBus& bus_;

  std::vector<RankRt> ranks_;
  isa::KernelId spin_kernel_;
  Network network_;
  Collectives collectives_;
  EventQueue queue_;
  std::vector<int> rank_on_linear_;
  std::vector<SimTime> preempt_until_;
  os::NoiseSource noise_;
  /// Ranks that entered a compute phase since the last refresh and still
  /// need a prediction (covers the no-load-change case: consecutive
  /// same-kernel segments, resumes from preemption).
  std::vector<std::size_t> fresh_compute_;
  std::size_t done_count_ = 0;
  int reported_epochs_ = 0;
  bool epochs_dirty_ = false;
  SimTime now_ = 0.0;
  std::uint64_t events_ = 0;  ///< processed (non-stale) events
  std::uint64_t pops_ = 0;    ///< all pops, the runaway guard's measure
  std::uint64_t load_key_ = 0;
  bool have_rates_ = false;
  smt::SampleResult rates_{};
};

RunStats Sim::run() {
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (ranks_[r].state != RunState::kDone) advance_rank(r);
  }
  refresh_rates();
  if (epochs_dirty_ && check_epochs()) refresh_rates();
  schedule_next_noise();

  while (!all_done()) {
    if (queue_.empty()) deadlock();
    SMTBAL_CHECK_MSG(++pops_ <= config_.max_events,
                     "engine exceeded max_events — runaway simulation?");
    SMTBAL_CHECK_MSG(now_ <= config_.max_sim_time,
                     "engine exceeded max_sim_time");
    const Event event = queue_.pop();
    if (is_stale(event)) continue;
    now_ = std::max(now_, event.time);
    ++events_;
    bus_.notify_event(event);
    dispatch(event);
    refresh_rates();
    if (epochs_dirty_ && check_epochs()) refresh_rates();
  }

  // Flush trailing trace intervals and close the trace.
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    set_trace(r, trace::RankState::kDone);
  }
  bus_.notify_finish(now_);
  return RunStats{now_, events_};
}

}  // namespace detail

void EngineConfig::validate() const {
  chip.validate();
  network.validate();
  SMTBAL_REQUIRE(chip.num_contexts() <= smt::kMaxContexts,
                 "EngineConfig.chip has more contexts than the sampler "
                 "supports (smt::kMaxContexts)");
  SMTBAL_REQUIRE(std::isfinite(max_sim_time) && max_sim_time > 0.0,
                 "EngineConfig.max_sim_time must be positive and finite");
  SMTBAL_REQUIRE(max_events > 0, "EngineConfig.max_events must be positive");
  SMTBAL_REQUIRE(std::isfinite(barrier_latency) && barrier_latency >= 0.0,
                 "EngineConfig.barrier_latency must be non-negative and "
                 "finite");
  SMTBAL_REQUIRE(std::isfinite(noise_horizon) && noise_horizon >= 0.0,
                 "EngineConfig.noise_horizon must be non-negative and finite");
  try {
    (void)isa::KernelRegistry::instance().by_name(spin_kernel);
  } catch (const std::exception&) {
    throw InvalidArgument("EngineConfig.spin_kernel '" + spin_kernel +
                          "' is not a registered kernel");
  }
}

namespace {

std::shared_ptr<smt::ThroughputSampler> make_own_sampler(
    const EngineConfig& config) {
  // Validate before the sampler touches the chip config so a broken
  // configuration fails with a structured error from either constructor.
  config.validate();
  return std::make_shared<smt::ThroughputSampler>(config.chip, config.sampler);
}

}  // namespace

Engine::Engine(Application app, Placement placement, EngineConfig config)
    : Engine(std::move(app), std::move(placement), config,
             make_own_sampler(config)) {}

Engine::Engine(Application app, Placement placement, EngineConfig config,
               std::shared_ptr<smt::ThroughputSampler> sampler)
    : app_(std::move(app)),
      placement_(std::move(placement)),
      config_(std::move(config)),
      sampler_(std::move(sampler)),
      kernel_(config_.kernel_flavor, config_.chip) {
  config_.validate();
  SMTBAL_REQUIRE(sampler_ != nullptr, "sampler must not be null");
  SMTBAL_REQUIRE(placement_.cpu_of_rank.size() == app_.size(),
                 "placement size must match rank count");
  for (const CpuId& cpu : placement_.cpu_of_rank) {
    SMTBAL_REQUIRE(cpu.linear(config_.chip.threads_per_core()) <
                       config_.chip.num_contexts(),
                   "placement assigns a rank to a CPU beyond "
                   "chip.num_contexts()");
  }
  app_.validate();
}

void Engine::add_observer(SimObserver* observer) {
  SMTBAL_REQUIRE(observer != nullptr, "observer must not be null");
  SMTBAL_REQUIRE(!ran_, "add_observer must be called before run()");
  observers_.push_back(observer);
}

void Engine::set_rank_priority(RankId rank, int priority) {
  SMTBAL_REQUIRE(!pid_of_rank_.empty(),
                 "set_rank_priority is only valid from policy hooks "
                 "(processes not spawned yet)");
  SMTBAL_REQUIRE(rank.value() < pid_of_rank_.size(), "rank out of range");
  const Pid pid = pid_of_rank_[rank.value()];
  // A rank that already exited has no process to re-prioritise (its
  // /proc/<pid>/hmt_priority file is gone); ignore, as a userspace
  // balancer racing process exit would experience.
  const CpuId cpu = placement_.cpu_of_rank[rank.value()];
  if (kernel_.process_on(cpu) != std::optional<Pid>(pid)) return;
  const int before = smt::level(kernel_.effective_priority(cpu));
  if (kernel_.flavor() == os::KernelFlavor::kPatched) {
    kernel_.write_hmt_priority(pid, priority);
  } else {
    // Vanilla kernel: userspace can only use the or-nop interface, which
    // is limited to priorities 2..4 (paper Table I).
    kernel_.set_priority_ornop(pid, smt::priority_from_int(priority),
                               smt::PrivilegeLevel::kUser);
  }
  const int after = smt::level(kernel_.effective_priority(cpu));
  if (after != before && active_bus_ != nullptr) {
    if (sim_ != nullptr) {
      sim_->notify_priority_change(rank, before, after);
    } else {
      active_bus_->notify_priority_change(rank, before, after, 0.0);
    }
  }
}

int Engine::rank_priority(RankId rank) const {
  SMTBAL_REQUIRE(rank.value() < placement_.cpu_of_rank.size(),
                 "rank out of range");
  return smt::level(
      kernel_.effective_priority(placement_.cpu_of_rank[rank.value()]));
}

RunResult Engine::run() {
  SMTBAL_REQUIRE(!ran_, "Engine::run() may be called only once");
  ran_ = true;

  ObserverBus bus;
  for (SimObserver* observer : observers_) bus.attach(observer);
  TraceObserver trace_observer(app_.size());
  MetricsObserver metrics_observer(app_.size());
  PolicyObserver policy_observer(policy_, *this);
  bus.attach(&trace_observer);
  bus.attach(&metrics_observer);
  if (policy_ != nullptr) bus.attach(&policy_observer);

  // Reset the live-run notification targets however run() exits.
  struct ActiveRun {
    Engine& engine;
    ~ActiveRun() {
      engine.sim_ = nullptr;
      engine.active_bus_ = nullptr;
    }
  } active{*this};
  active_bus_ = &bus;

  for (std::size_t r = 0; r < app_.size(); ++r) {
    pid_of_rank_.push_back(kernel_.spawn(placement_.cpu_of_rank[r]));
  }
  bus.notify_start(app_.size());
  if (policy_ != nullptr) policy_->on_start(*this);

  detail::Sim sim(app_, placement_, config_, *sampler_, kernel_, pid_of_rank_,
                  bus);
  sim_ = &sim;
  const detail::RunStats stats = sim.run();

  RunResult result;
  result.trace = trace_observer.take();
  result.exec_time = stats.end_time;
  result.imbalance = result.trace.imbalance();
  result.events = stats.events;
  result.priority_resets = kernel_.priority_resets();
  result.sampler_stats = sampler_->stats();
  result.metrics = metrics_observer.take();
  return result;
}

}  // namespace smtbal::mpisim
