#include "mpisim/engine.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "mpisim/sim.hpp"

namespace smtbal::mpisim {

void EngineConfig::validate() const {
  chip.validate();
  network.validate();
  if (chip.num_contexts() > smt::kMaxContexts) {
    std::ostringstream os;
    os << "EngineConfig.chip has " << chip.num_contexts()
       << " contexts but the sampler supports at most " << smt::kMaxContexts
       << " (smt::kMaxContexts); split the machine into cluster nodes "
          "(cluster::ClusterEngine) or shrink the chip";
    throw InvalidArgument(os.str());
  }
  SMTBAL_REQUIRE(std::isfinite(max_sim_time) && max_sim_time > 0.0,
                 "EngineConfig.max_sim_time must be positive and finite");
  SMTBAL_REQUIRE(max_events > 0, "EngineConfig.max_events must be positive");
  SMTBAL_REQUIRE(std::isfinite(barrier_latency) && barrier_latency >= 0.0,
                 "EngineConfig.barrier_latency must be non-negative and "
                 "finite");
  SMTBAL_REQUIRE(std::isfinite(noise_horizon) && noise_horizon >= 0.0,
                 "EngineConfig.noise_horizon must be non-negative and finite");
  try {
    (void)isa::KernelRegistry::instance().by_name(spin_kernel);
  } catch (const std::exception&) {
    throw InvalidArgument("EngineConfig.spin_kernel '" + spin_kernel +
                          "' is not a registered kernel");
  }
}

namespace {

std::shared_ptr<smt::ThroughputSampler> make_own_sampler(
    const EngineConfig& config) {
  // Validate before the sampler touches the chip config so a broken
  // configuration fails with a structured error from either constructor.
  config.validate();
  return std::make_shared<smt::ThroughputSampler>(config.chip, config.sampler);
}

}  // namespace

Engine::Engine(Application app, Placement placement, EngineConfig config)
    : Engine(std::move(app), std::move(placement), config,
             make_own_sampler(config)) {}

Engine::Engine(Application app, Placement placement, EngineConfig config,
               std::shared_ptr<smt::ThroughputSampler> sampler)
    : app_(std::move(app)),
      placement_(std::move(placement)),
      config_(std::move(config)),
      sampler_(std::move(sampler)),
      kernel_(config_.kernel_flavor, config_.chip) {
  config_.validate();
  SMTBAL_REQUIRE(sampler_ != nullptr, "sampler must not be null");
  SMTBAL_REQUIRE(placement_.cpu_of_rank.size() == app_.size(),
                 "placement size must match rank count");
  for (const CpuId& cpu : placement_.cpu_of_rank) {
    SMTBAL_REQUIRE(cpu.linear(config_.chip.threads_per_core()) <
                       config_.chip.num_contexts(),
                   "placement assigns a rank to a CPU beyond "
                   "chip.num_contexts()");
  }
  app_.validate();
}

void Engine::add_observer(SimObserver* observer) {
  SMTBAL_REQUIRE(observer != nullptr, "observer must not be null");
  SMTBAL_REQUIRE(!ran_, "add_observer must be called before run()");
  observers_.push_back(observer);
}

void Engine::set_rank_priority(RankId rank, int priority) {
  SMTBAL_REQUIRE(!pid_of_rank_.empty(),
                 "set_rank_priority is only valid from policy hooks "
                 "(processes not spawned yet)");
  SMTBAL_REQUIRE(rank.value() < pid_of_rank_.size(), "rank out of range");
  const Pid pid = pid_of_rank_[rank.value()];
  // A rank that already exited has no process to re-prioritise (its
  // /proc/<pid>/hmt_priority file is gone); ignore, as a userspace
  // balancer racing process exit would experience.
  const CpuId cpu = placement_.cpu_of_rank[rank.value()];
  if (kernel_.process_on(cpu) != std::optional<Pid>(pid)) return;
  const int before = smt::level(kernel_.effective_priority(cpu));
  if (kernel_.flavor() == os::KernelFlavor::kPatched) {
    kernel_.write_hmt_priority(pid, priority);
  } else {
    // Vanilla kernel: userspace can only use the or-nop interface, which
    // is limited to priorities 2..4 (paper Table I).
    kernel_.set_priority_ornop(pid, smt::priority_from_int(priority),
                               smt::PrivilegeLevel::kUser);
  }
  const int after = smt::level(kernel_.effective_priority(cpu));
  if (after != before && active_bus_ != nullptr) {
    if (sim_ != nullptr) {
      sim_->notify_priority_change(rank, before, after);
    } else {
      active_bus_->notify_priority_change(rank, before, after, 0.0);
    }
  }
}

int Engine::rank_priority(RankId rank) const {
  SMTBAL_REQUIRE(rank.value() < placement_.cpu_of_rank.size(),
                 "rank out of range");
  return smt::level(
      kernel_.effective_priority(placement_.cpu_of_rank[rank.value()]));
}

RunResult Engine::run() {
  SMTBAL_REQUIRE(!ran_, "Engine::run() may be called only once");
  ran_ = true;

  ObserverBus bus;
  for (SimObserver* observer : observers_) bus.attach(observer);
  TraceObserver trace_observer(app_.size());
  MetricsObserver metrics_observer(app_.size());
  PolicyObserver policy_observer(policy_, *this);
  bus.attach(&trace_observer);
  bus.attach(&metrics_observer);
  if (policy_ != nullptr) bus.attach(&policy_observer);

  // Reset the live-run notification targets however run() exits.
  struct ActiveRun {
    Engine& engine;
    ~ActiveRun() {
      engine.sim_ = nullptr;
      engine.active_bus_ = nullptr;
    }
  } active{*this};
  active_bus_ = &bus;

  for (std::size_t r = 0; r < app_.size(); ++r) {
    pid_of_rank_.push_back(kernel_.spawn(placement_.cpu_of_rank[r]));
  }
  bus.notify_start(app_.size());
  if (policy_ != nullptr) policy_->on_start(*this);

  // The flat engine is a one-node cluster: a single NodeCtx, every rank on
  // node 0, intra-node costs for every transfer.
  std::vector<detail::NodeCtx> nodes{{&config_.chip, sampler_.get(), &kernel_}};
  const std::vector<std::uint32_t> node_of_rank(app_.size(), 0);
  NetworkCostModel cost(config_.network);
  detail::Sim sim(app_, placement_, node_of_rank, config_, std::move(nodes),
                  cost, pid_of_rank_, bus);
  sim_ = &sim;
  const detail::RunStats stats = sim.run();

  RunResult result;
  result.trace = trace_observer.take();
  result.exec_time = stats.end_time;
  result.imbalance = result.trace.imbalance();
  result.events = stats.events;
  result.priority_resets = kernel_.priority_resets();
  result.sampler_stats = sampler_->stats();
  result.metrics = metrics_observer.take();
  return result;
}

}  // namespace smtbal::mpisim
