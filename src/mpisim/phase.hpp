// Rank programs: the phase-level description of an MPI process.
//
// An application is SPMD (paper §II): every rank runs a sequence of
// phases — computation, nonblocking sends/receives, collective barriers,
// completion waits and fixed-cost bookkeeping. This is exactly the level
// at which the paper characterises MetBench, BT-MZ and SIESTA.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "isa/kernel.hpp"
#include "trace/state.hpp"

namespace smtbal::mpisim {

/// Executes `instructions` of `kernel`. Progress speed is decided by the
/// SMT chip model (context priority, core-mate behaviour). `traced_as`
/// lets workload builders mark phases as initialisation (white bars in the
/// paper's figures) instead of regular compute.
struct ComputePhase {
  isa::KernelId kernel = 0;
  double instructions = 0.0;
  trace::RankState traced_as = trace::RankState::kCompute;
};

/// Global collective barrier (mpi_barrier): the rank blocks (busy-waiting)
/// until every rank has arrived.
struct BarrierPhase {};

/// Nonblocking send (mpi_isend): posts the message and returns
/// immediately; the payload arrives at the receiver after the network
/// delay.
struct SendPhase {
  RankId peer;
  std::uint64_t bytes = 0;
  int tag = 0;
};

/// Nonblocking receive (mpi_irecv): posts a receive request to be
/// completed by a later WaitAllPhase.
struct RecvPhase {
  RankId peer;
  std::uint64_t bytes = 0;
  int tag = 0;
};

/// mpi_waitall over every receive posted since the last WaitAll: blocks
/// (busy-waiting) until all matching messages have arrived.
struct WaitAllPhase {};

/// Global reduction (mpi_allreduce): every rank contributes `bytes` and
/// blocks until the reduced result is back — a barrier whose release cost
/// models the 2*ceil(log2 N) tree exchange steps.
struct AllreducePhase {
  std::uint64_t bytes = 8;
};

/// Fixed-duration local activity: statistics at the end of a MetBench
/// iteration (black bars, paper Fig. 2), or the short communication-setup
/// phases of BT-MZ (paper §VII-B, ~0.1% of execution).
struct DelayPhase {
  SimTime duration = 0.0;
  trace::RankState traced_as = trace::RankState::kStat;
};

using Phase = std::variant<ComputePhase, BarrierPhase, SendPhase, RecvPhase,
                           WaitAllPhase, DelayPhase, AllreducePhase>;

struct RankProgram {
  std::vector<Phase> phases;

  RankProgram& compute(isa::KernelId kernel, double instructions,
                       trace::RankState traced_as = trace::RankState::kCompute);
  RankProgram& barrier();
  RankProgram& send(RankId peer, std::uint64_t bytes, int tag = 0);
  RankProgram& recv(RankId peer, std::uint64_t bytes, int tag = 0);
  RankProgram& wait_all();
  RankProgram& allreduce(std::uint64_t bytes = 8);
  RankProgram& delay(SimTime duration,
                     trace::RankState traced_as = trace::RankState::kStat);
};

/// A full MPI application: one program per rank.
struct Application {
  std::string name = "app";
  std::vector<RankProgram> ranks;

  [[nodiscard]] std::size_t size() const { return ranks.size(); }

  /// Structural sanity checks: peer ids in range, the *sequence* of
  /// collectives (barriers and allreduces, with payload sizes) identical
  /// across ranks (a mismatched collective would deadlock), every recv
  /// has a matching send and vice versa. Throws InvalidArgument.
  void validate() const;
};

/// Where each rank is pinned (the paper pins process Pi to CPUi by
/// default and remaps in some cases).
struct Placement {
  std::vector<CpuId> cpu_of_rank;

  /// Identity placement: rank i on linear CPU i.
  static Placement identity(std::size_t num_ranks,
                            std::uint32_t slots_per_core = 2);

  /// Placement from linear CPU numbers, e.g. {0, 2, 3, 1} puts rank 0 on
  /// core0/slot0, rank 1 on core1/slot0, rank 2 on core1/slot1, ...
  static Placement from_linear(const std::vector<std::uint32_t>& cpus,
                               std::uint32_t slots_per_core = 2);
};

}  // namespace smtbal::mpisim
