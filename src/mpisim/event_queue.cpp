#include "mpisim/event_queue.hpp"

#include <utility>

#include "common/error.hpp"

namespace smtbal::mpisim {

bool EventQueue::before(const Handle& a, const Handle& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

Event EventQueue::materialize(const Handle& handle) const {
  const Body& body = arena_[handle.slot];
  return Event{handle.time, handle.seq, body.kind,
               body.subject, body.generation, body.msg};
}

std::uint64_t EventQueue::push(SimTime time, EventKind kind,
                               std::uint32_t subject, std::uint64_t generation,
                               MsgPayload msg) {
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(arena_.size());
    arena_.emplace_back();
  }
  arena_[slot] = Body{kind, subject, generation, msg};
  heap_.push_back(Handle{time, seq, slot});
  sift_up(heap_.size() - 1);
  return seq;
}

const Event& EventQueue::top() const {
  SMTBAL_DCHECK(!heap_.empty());
  top_scratch_ = materialize(heap_.front());
  return top_scratch_;
}

Event EventQueue::pop() {
  SMTBAL_CHECK_MSG(!heap_.empty(), "pop() on an empty event queue");
  const Handle top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  Event out = materialize(top);
  free_.push_back(top.slot);
  return out;
}

void EventQueue::sift_up(std::size_t index) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!before(heap_[index], heap_[parent])) return;
    std::swap(heap_[index], heap_[parent]);
    index = parent;
  }
}

void EventQueue::sift_down(std::size_t index) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * index + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = index;
    if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == index) return;
    std::swap(heap_[index], heap_[smallest]);
    index = smallest;
  }
}

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kComputeDone: return "compute-done";
    case EventKind::kDelayDone: return "delay-done";
    case EventKind::kMsgArrival: return "msg-arrival";
    case EventKind::kBarrierRelease: return "barrier-release";
    case EventKind::kNoisePreempt: return "noise-preempt";
    case EventKind::kNoiseResume: return "noise-resume";
    case EventKind::kPriorityChange: return "priority-change";
    case EventKind::kEpochEnd: return "epoch-end";
  }
  return "?";
}

}  // namespace smtbal::mpisim
