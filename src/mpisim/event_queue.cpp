#include "mpisim/event_queue.hpp"

#include <utility>

#include "common/error.hpp"

namespace smtbal::mpisim {

bool EventQueue::before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

std::uint64_t EventQueue::push(SimTime time, EventKind kind,
                               std::uint32_t subject, std::uint64_t generation,
                               MsgPayload msg) {
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{time, seq, kind, subject, generation, msg});
  sift_up(heap_.size() - 1);
  return seq;
}

Event EventQueue::pop() {
  SMTBAL_CHECK_MSG(!heap_.empty(), "pop() on an empty event queue");
  Event top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

void EventQueue::sift_up(std::size_t index) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!before(heap_[index], heap_[parent])) return;
    std::swap(heap_[index], heap_[parent]);
    index = parent;
  }
}

void EventQueue::sift_down(std::size_t index) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * index + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = index;
    if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == index) return;
    std::swap(heap_[index], heap_[smallest]);
    index = smallest;
  }
}

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kComputeDone: return "compute-done";
    case EventKind::kDelayDone: return "delay-done";
    case EventKind::kMsgArrival: return "msg-arrival";
    case EventKind::kBarrierRelease: return "barrier-release";
    case EventKind::kNoisePreempt: return "noise-preempt";
    case EventKind::kNoiseResume: return "noise-resume";
    case EventKind::kPriorityChange: return "priority-change";
    case EventKind::kEpochEnd: return "epoch-end";
  }
  return "?";
}

}  // namespace smtbal::mpisim
