// Observer bus of the event kernel.
//
// The simulation core publishes everything that happens — processed
// events, completed trace intervals, priority rewrites, epoch boundaries —
// to a list of SimObserver instances. Tracing (TraceObserver), metrics
// collection (MetricsObserver in metrics.hpp) and balance-policy dispatch
// (PolicyObserver) all attach through this one seam, so new consumers
// plug in without touching the simulation core.
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"
#include "mpisim/event.hpp"
#include "mpisim/hooks.hpp"
#include "trace/tracer.hpp"

namespace smtbal::mpisim {

class AuditSource;

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// The simulation core offers its audit window (audit.hpp) when the
  /// event loop starts, before any event notification. `audit` stays
  /// valid until on_finish; observers that do not check invariants
  /// ignore it.
  virtual void on_bind(const AuditSource* audit) { (void)audit; }

  /// The run is about to start (processes spawned, time 0).
  virtual void on_start(std::size_t num_ranks) { (void)num_ranks; }

  /// An event was processed (heap-scheduled kinds) or synthesized
  /// (kPriorityChange, kEpochEnd) at `event.time`.
  virtual void on_event(const Event& event) { (void)event; }

  /// A rank spent [begin, end) in `state` (emitted when the shown state
  /// changes, so consecutive same-state intervals arrive merged).
  virtual void on_interval(RankId rank, SimTime begin, SimTime end,
                           trace::RankState state) {
    (void)rank, (void)begin, (void)end, (void)state;
  }

  /// A rank's effective hardware priority level changed (from != to).
  virtual void on_priority_change(RankId rank, int from, int to, SimTime now) {
    (void)rank, (void)from, (void)to, (void)now;
  }

  /// A rank was remapped to another (core, slot) seat (from != to).
  virtual void on_placement_change(RankId rank, CpuId from, CpuId to,
                                   SimTime now) {
    (void)rank, (void)from, (void)to, (void)now;
  }

  /// A rank was migrated to a seat on another node (cluster runs only;
  /// from_node != to_node — same-node moves arrive as placement changes).
  virtual void on_rank_migration(RankId rank, std::uint32_t from_node,
                                 std::uint32_t to_node, SimTime now) {
    (void)rank, (void)from_node, (void)to_node, (void)now;
  }

  /// All ranks completed one more global synchronisation epoch.
  virtual void on_epoch(const EpochReport& report) { (void)report; }

  /// The run finished (all ranks done) at `end_time`.
  virtual void on_finish(SimTime end_time) { (void)end_time; }
};

/// Fan-out of simulation notifications to the attached observers, in
/// attach order. Non-owning; observers must outlive the run.
class ObserverBus {
 public:
  void attach(SimObserver* observer) { observers_.push_back(observer); }

  /// True when no observer is attached. The simulation core checks this
  /// once per run and skips notification dispatch (and the Event
  /// materialisation feeding it) entirely on its hot path — an unobserved
  /// run (the fuzz oracle differential, headless batch reruns) pays
  /// nothing for the seam.
  [[nodiscard]] bool empty() const { return observers_.empty(); }

  void notify_bind(const AuditSource* audit) {
    for (SimObserver* o : observers_) o->on_bind(audit);
  }
  void notify_start(std::size_t num_ranks) {
    for (SimObserver* o : observers_) o->on_start(num_ranks);
  }
  void notify_event(const Event& event) {
    for (SimObserver* o : observers_) o->on_event(event);
  }
  void notify_interval(RankId rank, SimTime begin, SimTime end,
                       trace::RankState state) {
    for (SimObserver* o : observers_) o->on_interval(rank, begin, end, state);
  }
  void notify_priority_change(RankId rank, int from, int to, SimTime now) {
    for (SimObserver* o : observers_) o->on_priority_change(rank, from, to, now);
  }
  void notify_placement_change(RankId rank, CpuId from, CpuId to, SimTime now) {
    for (SimObserver* o : observers_) {
      o->on_placement_change(rank, from, to, now);
    }
  }
  void notify_rank_migration(RankId rank, std::uint32_t from_node,
                             std::uint32_t to_node, SimTime now) {
    for (SimObserver* o : observers_) {
      o->on_rank_migration(rank, from_node, to_node, now);
    }
  }
  void notify_epoch(const EpochReport& report) {
    for (SimObserver* o : observers_) o->on_epoch(report);
  }
  void notify_finish(SimTime end_time) {
    for (SimObserver* o : observers_) o->on_finish(end_time);
  }

 private:
  std::vector<SimObserver*> observers_;
};

/// Adapts trace::Tracer to the bus: records every interval and closes the
/// trace at on_finish. The engine moves the finished tracer into the
/// RunResult via take().
class TraceObserver final : public SimObserver {
 public:
  explicit TraceObserver(std::size_t num_ranks) : tracer_(num_ranks) {}

  void on_interval(RankId rank, SimTime begin, SimTime end,
                   trace::RankState state) override {
    tracer_.record(rank, begin, end, state);
  }
  void on_finish(SimTime end_time) override { tracer_.finish(end_time); }

  [[nodiscard]] trace::Tracer take() { return std::move(tracer_); }

 private:
  trace::Tracer tracer_;
};

/// Adapts a BalancePolicy to the bus: epoch reports are forwarded to
/// on_epoch with the engine's control surface, replacing the bespoke
/// policy plumbing the simulation core used to carry.
class PolicyObserver final : public SimObserver {
 public:
  PolicyObserver(BalancePolicy* policy, EngineControl& control)
      : policy_(policy), control_(control) {}

  void on_epoch(const EpochReport& report) override {
    if (policy_ != nullptr) policy_->on_epoch(control_, report);
  }

 private:
  BalancePolicy* policy_;
  EngineControl& control_;
};

}  // namespace smtbal::mpisim
