// Differential fuzzing driver (simcheck).
//
// Runs randomized scenarios through every applicable differential
// (engine vs oracle, flat vs cluster(M=1)) and the invariant checker,
// and reports divergences as deterministic replay seeds:
//
//   simcheck_fuzz --count 10000 --jobs 0        # 10k seeds, all cores
//   simcheck_fuzz --seconds 60                  # time-boxed smoke run
//   simcheck_fuzz --replay 12345 --mode flat    # re-run one seed
//   simcheck_fuzz --corpus tests/corpus         # replay saved seeds
//
// Exit status: 0 = no divergence, 1 = at least one failure (each
// printed with its spec line and shrunk minimal spec), 2 = bad usage.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "runner/batch.hpp"
#include "simcheck/differ.hpp"
#include "simcheck/fuzz.hpp"
#include "simcheck/scenario.hpp"

namespace {

using smtbal::simcheck::FuzzMode;

struct CorpusEntry {
  std::uint64_t seed = 0;
  FuzzMode mode = FuzzMode::kAny;
  std::string origin;  ///< "file:line" for diagnostics
};

/// Parses one corpus line: "<seed> [flat|any]", '#' starts a comment.
std::optional<CorpusEntry> parse_corpus_line(std::string line,
                                             const std::string& origin) {
  if (const auto hash = line.find('#'); hash != std::string::npos) {
    line.resize(hash);
  }
  std::istringstream is(line);
  CorpusEntry entry;
  entry.origin = origin;
  if (!(is >> entry.seed)) return std::nullopt;  // blank / comment-only
  std::string mode;
  if (is >> mode) {
    if (mode == "flat") {
      entry.mode = FuzzMode::kFlat;
    } else if (mode != "any") {
      throw smtbal::InvalidArgument(origin + ": unknown mode '" + mode + "'");
    }
  }
  return entry;
}

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> entries;
  std::vector<std::filesystem::path> files;
  for (const auto& item : std::filesystem::directory_iterator(dir)) {
    if (item.is_regular_file() && item.path().extension() == ".seeds") {
      files.push_back(item.path());
    }
  }
  std::sort(files.begin(), files.end());  // directory order is unspecified
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) {
      throw smtbal::InvalidArgument("cannot read corpus file " + path.string());
    }
    std::string line;
    for (int lineno = 1; std::getline(in, line); ++lineno) {
      if (auto entry = parse_corpus_line(
              line, path.filename().string() + ":" + std::to_string(lineno))) {
        entries.push_back(std::move(*entry));
      }
    }
  }
  return entries;
}

/// check_spec plus the per-policy differential for each --policies spec;
/// the campaign path in run_fuzz applies the same battery.
std::optional<std::string> check_with_policies(
    const smtbal::simcheck::ScenarioSpec& spec,
    const std::vector<std::string>& policies) {
  if (auto d = smtbal::simcheck::check_spec(spec)) return d;
  for (const std::string& policy : policies) {
    if (auto d = smtbal::simcheck::check_policy_spec(spec, policy)) return d;
  }
  return std::nullopt;
}

int usage(std::ostream& os, int code) {
  os << "usage: simcheck_fuzz [--seed-base N] [--count N] [--seconds S]\n"
        "                     [--jobs N] [--mode any|flat] [--no-shrink]\n"
        "                     [--replay SEED] [--corpus DIR]\n"
        "                     [--policies SPEC[,SPEC...]]\n"
        "\n"
        "--policies additionally runs every scenario under each named\n"
        "registry policy (flat-vs-cluster(M=1) differential; invariants\n"
        "only for multi-node). Specs use the policy::Registry syntax,\n"
        "e.g. 'dynamic' or 'allocation:interval=2'.\n";
  return code;
}

void print_failure(const smtbal::simcheck::FuzzFailure& failure) {
  std::cerr << "FAIL seed=" << failure.seed << ": " << failure.message << "\n"
            << "  spec:   " << to_string(failure.spec) << "\n"
            << "  shrunk: " << to_string(failure.shrunk) << "\n"
            << "  replay: simcheck_fuzz --replay " << failure.seed << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  smtbal::simcheck::FuzzOptions options;
  options.count = 1000;
  std::optional<std::uint64_t> replay;
  std::string corpus_dir;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (++i >= argc) {
          throw smtbal::InvalidArgument(arg + " requires a value");
        }
        return argv[i];
      };
      if (arg == "--seed-base") {
        options.seed_base = std::stoull(value());
      } else if (arg == "--count") {
        options.count = std::stoull(value());
      } else if (arg == "--seconds") {
        options.seconds = std::stod(value());
      } else if (arg == "--jobs") {
        options.jobs = smtbal::runner::parse_jobs(value());
      } else if (arg == "--mode") {
        const std::string mode = value();
        if (mode == "any") {
          options.mode = FuzzMode::kAny;
        } else if (mode == "flat") {
          options.mode = FuzzMode::kFlat;
        } else {
          throw smtbal::InvalidArgument("--mode must be 'any' or 'flat'");
        }
      } else if (arg == "--policies") {
        std::istringstream is(value());
        for (std::string spec; std::getline(is, spec, ',');) {
          if (!spec.empty()) options.policies.push_back(spec);
        }
      } else if (arg == "--no-shrink") {
        options.shrink = false;
      } else if (arg == "--replay") {
        replay = std::stoull(value());
      } else if (arg == "--corpus") {
        corpus_dir = value();
      } else if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(std::cerr, 2);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage(std::cerr, 2);
  }

  try {
    if (replay) {
      const auto spec = options.mode == FuzzMode::kFlat
                            ? smtbal::simcheck::random_flat_spec(*replay)
                            : smtbal::simcheck::random_spec(*replay);
      std::cout << "replaying " << to_string(spec) << "\n";
      if (const auto message = check_with_policies(spec, options.policies)) {
        std::cerr << "FAIL: " << *message << "\n";
        return 1;
      }
      std::cout << "PASS\n";
      return 0;
    }

    if (!corpus_dir.empty()) {
      const auto entries = load_corpus(corpus_dir);
      std::cout << "replaying " << entries.size() << " corpus seed(s) from "
                << corpus_dir << "\n";
      int failures = 0;
      for (const auto& entry : entries) {
        const auto spec = entry.mode == FuzzMode::kFlat
                              ? smtbal::simcheck::random_flat_spec(entry.seed)
                              : smtbal::simcheck::random_spec(entry.seed);
        if (const auto message = check_with_policies(spec, options.policies)) {
          std::cerr << "FAIL " << entry.origin << " seed=" << entry.seed
                    << ": " << *message << "\n";
          ++failures;
        }
      }
      if (failures == 0) std::cout << "PASS\n";
      return failures == 0 ? 0 : 1;
    }

    const auto report = smtbal::simcheck::run_fuzz(options);
    std::cout << "ran " << report.iterations << " scenario(s), "
              << report.failures.size() << " failure(s)\n";
    for (const auto& failure : report.failures) print_failure(failure);
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 2;
  }
}
