#!/usr/bin/env python3
"""Perf-regression gate over bench_perf_micro output.

Converts a google-benchmark JSON report into the repo's machine-readable
perf baseline (``BENCH_perf.json``, schema ``smtbal.bench.perf/1``:
per-bench items/sec) and/or diffs a fresh report against a committed
baseline, failing on >tolerance throughput regression.

Typical flows (see EXPERIMENTS.md "Perf gate"):

  # gate (CI and local):
  build/bench/bench_perf_micro --benchmark_format=json \
      --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
      > /tmp/bench_raw.json
  tools/check_bench_regression.py /tmp/bench_raw.json \
      --baseline BENCH_perf.json --tolerance 0.10 --calibrate BM_StreamGen \
      --emit BENCH_perf.fresh.json

  # refresh the committed baseline after an intentional perf change:
  tools/check_bench_regression.py /tmp/bench_raw.json --emit BENCH_perf.json

Only benchmarks that report ``items_per_second`` participate (the gate's
unit is work per second, not wall time). With ``--calibrate NAME`` each
bench is compared via its throughput *ratio* to the named calibration
bench, which cancels machine speed to first order — raw items/sec on a
shared CI runner can legitimately drift far more than any useful
tolerance, while the ratio between two benches in the same process is
far more stable. The baseline stores raw items/sec either way, so the
committed file doubles as the absolute perf trajectory.
"""

import argparse
import json
import sys

SCHEMA = "smtbal.bench.perf/1"
# Median over repetitions: robust to a single noisy run, deterministic
# given the report (mean is dragged by one descheduled repetition).
PREFERRED_AGGREGATE = "median"


def load_throughputs(path):
    """name -> items/sec from a google-benchmark JSON report.

    Prefers the median aggregate when repetitions were run; falls back to
    plain iteration entries. Benches without items_per_second are skipped.
    """
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    benches = report.get("benchmarks")
    if benches is None:
        raise SystemExit(f"{path}: not a google-benchmark JSON report")
    iterations = {}
    aggregates = {}
    for entry in benches:
        ips = entry.get("items_per_second")
        if ips is None:
            continue
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == PREFERRED_AGGREGATE:
                base = entry["name"]
                suffix = "_" + PREFERRED_AGGREGATE
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
                aggregates[base] = ips
        else:
            iterations[entry["name"]] = ips
    return aggregates or iterations


def load_baseline(path):
    with open(path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != SCHEMA:
        raise SystemExit(f"{path}: expected schema {SCHEMA!r}, "
                         f"got {baseline.get('schema')!r}")
    return baseline["items_per_second"]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="google-benchmark JSON report")
    parser.add_argument("--baseline",
                        help=f"committed {SCHEMA} baseline to gate against")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    parser.add_argument("--calibrate", metavar="NAME",
                        help="compare per-bench ratios to this bench "
                             "(cancels machine speed across runners)")
    parser.add_argument("--emit", metavar="PATH",
                        help=f"write the report as a {SCHEMA} file")
    args = parser.parse_args()

    fresh = load_throughputs(args.report)
    if not fresh:
        raise SystemExit(f"{args.report}: no benchmarks report items_per_second")

    if args.emit:
        with open(args.emit, "w", encoding="utf-8") as fh:
            json.dump({"schema": SCHEMA,
                       "tolerance": args.tolerance,
                       "calibrate": args.calibrate,
                       "items_per_second":
                           {k: fresh[k] for k in sorted(fresh)}},
                      fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.emit} ({len(fresh)} benches)")

    if not args.baseline:
        return

    baseline = load_baseline(args.baseline)

    def normalise(table):
        if not args.calibrate:
            return table
        if args.calibrate not in table:
            raise SystemExit(f"calibration bench {args.calibrate!r} missing "
                             "from one of the reports")
        scale = table[args.calibrate]
        return {name: ips / scale for name, ips in table.items()
                if name != args.calibrate}

    fresh_n = normalise(fresh)
    baseline_n = normalise(baseline)

    regressions = []
    width = max((len(n) for n in baseline_n), default=0)
    unit = "ratio vs " + args.calibrate if args.calibrate else "items/sec"
    print(f"perf gate: tolerance {args.tolerance:.0%}, comparing {unit}")
    for name in sorted(baseline_n):
        if name not in fresh_n:
            regressions.append(f"{name}: missing from fresh report")
            continue
        was, now = baseline_n[name], fresh_n[name]
        delta = now / was - 1.0
        flag = ""
        if delta < -args.tolerance:
            flag = "  REGRESSION"
            regressions.append(f"{name}: {delta:+.1%} ({was:.4g} -> {now:.4g})")
        print(f"  {name:<{width}}  {was:>12.4g} -> {now:>12.4g}  "
              f"{delta:+7.1%}{flag}")
    for name in sorted(set(fresh_n) - set(baseline_n)):
        print(f"  {name:<{width}}  (new bench, not in baseline)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        sys.exit(1)
    print("PASS: no regression beyond tolerance")


if __name__ == "__main__":
    main()
