// evald: the simulation-evaluation daemon front-end.
//
// Reads a smtbal.evalreq/1 feed (stdin or --requests FILE), pushes every
// request through service::EvalService, and writes smtbal.evalresp/1
// responses (stdout or --responses FILE) in request order: one meta
// record, one result record per request, then the scheduling-dependent
// smtbal.evalresp.batch/1 trailer. The result records are byte-identical
// for any --workers value; to diff two response files drop the trailer
// first (grep -v '"schema":"smtbal.evalresp.batch/1"').
//
//   $ ./evald --requests reqs.jsonl --workers 8 --store results.jsonl
//   $ cat reqs.jsonl | ./evald > resps.jsonl
//
//   --requests FILE   request feed ('-' = stdin, the default)
//   --responses FILE  response sink ('-' = stdout, the default)
//   --workers N       evaluation threads per wave (0 = all host cores)
//   --store FILE      persistent result-store journal (reloads on start)
//   --max-queue N     admission bound on queued requests (default 1024)
//   --cache-capacity N  FIFO bound per sampler-domain SampleCache
//   --selftest        run the embedded determinism / admission / store
//                     round-trip checks and exit 0 on success
//
// Requests beyond the admission bound are rejected with a reason (status
// "rejected") rather than queued without bound — resubmit them after the
// daemon drains. Size --max-queue to the feed when replaying large files.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "runner/batch.hpp"
#include "service/request.hpp"
#include "service/service.hpp"

using namespace smtbal;

namespace {

struct FeedResult {
  std::vector<std::string> records;  ///< deterministic result records
  std::string trailer;               ///< scheduling-dependent trailer
  service::ServiceStats stats;
};

/// Runs one request list through a fresh service: submit everything (in
/// order), graceful drain, collect the responses in submission order.
FeedResult run_feed(const std::vector<service::EvalRequest>& requests,
                    const service::ServiceConfig& config) {
  service::EvalService daemon(config);
  std::vector<std::future<service::EvalResponse>> futures;
  futures.reserve(requests.size());
  for (const service::EvalRequest& request : requests) {
    futures.push_back(daemon.submit(request));
  }
  daemon.shutdown();
  FeedResult feed;
  feed.records.reserve(futures.size());
  for (auto& future : futures) {
    feed.records.push_back(service::to_json_record(future.get()));
  }
  feed.trailer = daemon.trailer();
  feed.stats = daemon.stats();
  return feed;
}

int run_file_mode(const std::string& requests_path,
                  const std::string& responses_path,
                  const service::ServiceConfig& config) {
  std::vector<service::EvalRequest> requests;
  if (requests_path.empty() || requests_path == "-") {
    requests = service::parse_requests(std::cin, "<stdin>");
  } else {
    requests = service::parse_requests_file(requests_path);
  }

  const FeedResult feed = run_feed(requests, config);

  std::ofstream file;
  std::ostream* os = &std::cout;
  if (!responses_path.empty() && responses_path != "-") {
    file.open(responses_path, std::ios::binary | std::ios::trunc);
    if (!file) {
      throw SimulationError("cannot write " + responses_path);
    }
    os = &file;
  }
  *os << "{\"schema\":\"" << service::kEvalResponseSchema
      << "\",\"type\":\"meta\",\"requests\":" << requests.size() << "}\n";
  for (const std::string& record : feed.records) *os << record << '\n';
  *os << feed.trailer << '\n';

  std::size_t failures = 0;
  for (const std::string& record : feed.records) {
    if (record.find("\"status\":\"ok\"") == std::string::npos) ++failures;
  }
  std::cerr << "[evald] " << feed.records.size() << " requests, "
            << feed.stats.served << " served (" << feed.stats.store.hits
            << " store hits), " << feed.stats.rejected << " rejected, "
            << feed.stats.failed << " failed\n";
  return failures == 0 ? 0 : 1;
}

std::vector<service::EvalRequest> selftest_requests() {
  std::vector<service::EvalRequest> requests;
  const auto scenario = [&](std::string id, std::string spec,
                            std::string policy) {
    service::EvalRequest request;
    request.id = std::move(id);
    request.scenario = std::move(spec);
    request.policy = std::move(policy);
    return request;
  };
  requests.push_back(scenario("s1", "seed=7 ranks=4 cores=2 blocks=2", "none"));
  requests.push_back(scenario("s2", "seed=7 ranks=4 cores=2 blocks=2",
                              "dynamic"));
  // Same shape as s1 after canonicalization: must dedupe / store-hit, and
  // must serve the identical payload.
  requests.push_back(
      scenario("s3", "ranks=4 seed=7 blocks=2 cores=2 flavor=patched", "none"));
  requests.push_back(scenario("s4", "seed=11 ranks=6 cores=3 family=3", "none"));
  // A malformed scenario: must yield a deterministic error record.
  requests.push_back(scenario("s5", "seed=7 warp=9", "none"));
  requests.back().stats = service::StatSelection{true, true, false, false};
  return requests;
}

int run_selftest(service::ServiceConfig base) {
  const std::vector<service::EvalRequest> requests = selftest_requests();

  // 1. Responses must be byte-identical across worker counts.
  service::ServiceConfig one = base;
  one.workers = 1;
  service::ServiceConfig many = base;
  many.workers = 3;
  const FeedResult lhs = run_feed(requests, one);
  const FeedResult rhs = run_feed(requests, many);
  if (lhs.records != rhs.records) {
    std::cerr << "selftest: FAIL — responses differ between --workers 1 "
                 "and --workers 3\n";
    return 1;
  }

  // 2. Warm-store determinism: resubmitting the same feed to a live
  // service must serve hits and the identical records.
  {
    service::EvalService daemon(one);
    std::vector<std::future<service::EvalResponse>> first, second;
    for (const auto& request : requests) first.push_back(daemon.submit(request));
    daemon.wait_idle();
    for (const auto& request : requests) {
      second.push_back(daemon.submit(request));
    }
    daemon.shutdown();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const std::string cold = service::to_json_record(first[i].get());
      const std::string warm = service::to_json_record(second[i].get());
      if (cold != warm) {
        std::cerr << "selftest: FAIL — warm response differs for '"
                  << requests[i].id << "'\n";
        return 1;
      }
    }
    if (daemon.stats().store.hits == 0) {
      std::cerr << "selftest: FAIL — resubmitted feed produced no store "
                   "hits\n";
      return 1;
    }
  }

  // 3. Admission control: with the dispatcher paused and a tiny bound,
  // the overflow must be rejected with a reason, deterministically.
  {
    service::ServiceConfig tiny = base;
    tiny.workers = 1;
    tiny.max_queue = 4;  // reserve 1 -> 3 batch slots
    service::EvalService daemon(tiny);
    daemon.pause();
    std::vector<std::future<service::EvalResponse>> futures;
    for (std::size_t i = 0; i < 6; ++i) {
      service::EvalRequest request = requests[0];
      request.id = "flood" + std::to_string(i);
      futures.push_back(daemon.submit(request));
    }
    daemon.resume();
    daemon.shutdown();
    std::size_t rejected = 0;
    for (auto& future : futures) {
      const service::EvalResponse response = future.get();
      if (response.status == service::Status::kRejected) {
        ++rejected;
        if (response.error.find("full") == std::string::npos) {
          std::cerr << "selftest: FAIL — rejection carries no reason\n";
          return 1;
        }
      }
    }
    if (rejected != 3) {
      std::cerr << "selftest: FAIL — expected 3 admission rejections, got "
                << rejected << "\n";
      return 1;
    }
  }

  // 4. Store round-trip: a journal written by one service instance must
  // serve hits — and identical records — in a fresh instance.
  {
    const std::filesystem::path journal =
        std::filesystem::temp_directory_path() /
        ("evald-selftest-" + std::to_string(::getpid()) + ".jsonl");
    std::filesystem::remove(journal);
    service::ServiceConfig stored = one;
    stored.store_path = journal.string();
    const FeedResult cold = run_feed(requests, stored);
    const FeedResult warm = run_feed(requests, stored);
    std::filesystem::remove(journal);
    if (cold.records != warm.records) {
      std::cerr << "selftest: FAIL — journal-reloaded responses differ\n";
      return 1;
    }
    if (warm.stats.store.loaded == 0 || warm.stats.evaluated != 0) {
      std::cerr << "selftest: FAIL — journal reload did not serve the "
                   "second run from the store\n";
      return 1;
    }
  }

  std::cout << "selftest: OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const runner::CliOptions cli = runner::parse_cli(argc, argv);
  service::ServiceConfig config;
  config.workers = cli.jobs;
  config.cache_capacity = cli.cache_capacity;
  std::string requests_path;
  std::string responses_path;
  bool selftest = false;
  for (std::size_t i = 0; i < cli.positional.size(); ++i) {
    const std::string& arg = cli.positional[i];
    auto value_of = [&](const std::string& flag) -> std::string {
      if (arg == flag) {
        SMTBAL_REQUIRE(i + 1 < cli.positional.size(), flag + " needs a value");
        return cli.positional[++i];
      }
      return arg.substr(flag.size() + 1);  // "--flag=value"
    };
    if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--requests" || arg.rfind("--requests=", 0) == 0) {
      requests_path = value_of("--requests");
    } else if (arg == "--responses" || arg.rfind("--responses=", 0) == 0) {
      responses_path = value_of("--responses");
    } else if (arg == "--store" || arg.rfind("--store=", 0) == 0) {
      config.store_path = value_of("--store");
      SMTBAL_REQUIRE(!config.store_path.empty(), "--store needs a file path");
    } else if (arg == "--workers" || arg.rfind("--workers=", 0) == 0) {
      config.workers = runner::parse_jobs(value_of("--workers"));
    } else if (arg == "--max-queue" || arg.rfind("--max-queue=", 0) == 0) {
      const unsigned bound = runner::parse_jobs(value_of("--max-queue"));
      SMTBAL_REQUIRE(bound >= 1, "--max-queue must be >= 1");
      config.max_queue = bound;
    } else {
      throw InvalidArgument("unknown argument '" + arg +
                            "' (try --requests, --responses, --workers, "
                            "--store, --max-queue, --cache-capacity, "
                            "--selftest)");
    }
  }
  if (selftest) return run_selftest(config);
  return run_file_mode(requests_path, responses_path, config);
} catch (const std::exception& e) {
  std::cerr << "evald: " << e.what() << '\n';
  return 1;
}
