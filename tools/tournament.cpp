// Policy tournament: every registered balancing policy against a corpus
// of scenarios, ranked by geometric-mean speedup over the no-policy
// baseline.
//
// The corpus mixes the paper's workload cases (MetBench, BT-MZ, SIESTA,
// Fig. 1, the SMT4 extrapolation — all on their reference mapping, every
// rank at the kernel-default MEDIUM), a deliberately mis-seated MetBench
// (both heavy workers sharing one core — the situation priorities alone
// cannot repair), simcheck's ScenarioSpec fuzz scenarios (flat and
// multi-node), and the skewed-cluster bench workload. Every entrant runs
// every scenario through runner::BatchRunner, so results are
// byte-identical for any --jobs value; the league table JSONL (schema
// smtbal.tournament/1) is therefore deterministic and diffable once its
// final smtbal.bench.batch trailer (sampler/cache counters, the one
// scheduling-dependent line) is dropped.
//
//   $ ./tournament [--smoke] [--jobs N] [--json FILE] [--cache-capacity N]
//                  [--policies a,b,c] [--seed-base N] [--list-policies]
//                  [--list-scenarios]
//
//   --smoke          small corpus / short runs (the CI lane)
//   --list-scenarios print the corpus scenario names (honours --smoke /
//                    --seed-base) and exit
//   --policies LIST  comma-separated entrant specs (default: "none" plus
//                    every registered policy with default config);
//                    unknown names fail with a did-you-mean suggestion
//   --seed-base N    base seed for the fuzzed scenarios (default 4200)
//   --json FILE      write the smtbal.tournament/1 league-table JSONL
//   --list-policies  print the registry (name, summary, config schema)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/workload.hpp"
#include "common/error.hpp"
#include "policy/registry.hpp"
#include "runner/batch.hpp"
#include "runner/report.hpp"
#include "simcheck/scenario.hpp"
#include "workloads/btmz.hpp"
#include "workloads/cases.hpp"
#include "workloads/drift.hpp"
#include "workloads/fig1.hpp"
#include "workloads/master_worker.hpp"
#include "workloads/metbench.hpp"
#include "workloads/siesta.hpp"
#include "workloads/stencil.hpp"

using namespace smtbal;

namespace {

struct ScenarioData {
  std::string name;
  mpisim::Application app;
  mpisim::Placement placement;
  mpisim::EngineConfig config{};
  std::optional<cluster::ClusterPlacement> cluster_placement;
  std::optional<cluster::ClusterConfig> cluster_config;
};

std::vector<std::shared_ptr<ScenarioData>> build_corpus(bool smoke,
                                                        std::uint64_t seed_base) {
  std::vector<std::shared_ptr<ScenarioData>> corpus;
  auto add = [&corpus](ScenarioData data) {
    corpus.push_back(std::make_shared<ScenarioData>(std::move(data)));
  };

  // Paper workloads on their reference (case A) seating, no static
  // priorities: the policies earn their keep from the kernel default.
  {
    workloads::MetBenchConfig config;
    if (smoke) config.iterations = 3;
    add({"paper/metbench-A", workloads::build_metbench(config),
         workloads::metbench_cases().front().placement});
    // The mis-seated variant: both heavy workers (P2, P4) share core 1.
    // A priority gap only redistributes that core's decode slots between
    // two heavyweights; only a placement move can fix the seating.
    add({"paper/metbench-misseated", workloads::build_metbench(config),
         mpisim::Placement::from_linear({2, 0, 3, 1})});
  }
  if (!smoke) {
    add({"paper/btmz-A", workloads::build_btmz({}),
         workloads::btmz_cases().front().placement});
    add({"paper/siesta-A", workloads::build_siesta({}),
         workloads::siesta_cases().front().placement});
    add({"paper/fig1-ref", workloads::build_fig1({}),
         workloads::fig1_cases().front().placement});
    workloads::MetBenchConfig smt4;
    smt4.num_ranks = 8;
    smt4.heavy = {false, true, false, false, false, true, false, false};
    smt4.light_fraction = 0.25;
    ScenarioData data{"paper/smt4-A", workloads::build_metbench(smt4),
                      workloads::smt4_cases().front().placement};
    data.config.chip.core.threads_per_core = 4;
    add(std::move(data));
  }

  // Fuzzed flat scenarios (the simcheck generator, patched kernel so the
  // full 1..6 priority band is actuable).
  const std::size_t flat_fuzz = smoke ? 2 : 10;
  for (std::size_t i = 0; i < flat_fuzz; ++i) {
    simcheck::ScenarioSpec spec = simcheck::random_flat_spec(seed_base + i);
    spec.vanilla = false;
    const simcheck::Scenario scenario = simcheck::build_scenario(spec);
    add({"fuzz/flat-seed" + std::to_string(seed_base + i), scenario.app,
         scenario.placement, scenario.config});
  }

  // Fuzzed multi-node scenarios: scan seeds for genuinely multi-node
  // shapes and run them through the cluster engine.
  const std::size_t cluster_fuzz = smoke ? 1 : 3;
  std::size_t found = 0;
  for (std::uint64_t s = seed_base + 100;
       found < cluster_fuzz && s < seed_base + 400; ++s) {
    simcheck::ScenarioSpec spec = simcheck::random_spec(s);
    spec.vanilla = false;
    if (simcheck::sanitize_spec(spec).num_nodes < 2) continue;
    const simcheck::Scenario scenario = simcheck::build_scenario(spec);
    ScenarioData data{"fuzz/cluster-seed" + std::to_string(s), scenario.app,
                      scenario.placement};
    data.cluster_placement = scenario.cluster_placement;
    data.cluster_config = scenario.cluster_config;
    add(std::move(data));
    ++found;
  }

  // Scenario-diversity families: a static mid-domain load bump (the case
  // where priorities fixed at start *can* win), a rotating straggler, and
  // an AMR-style drifting front (the cases where they cannot). All flat,
  // 8 ranks on a 4-core SMT2 chip.
  auto flat8 = [](ScenarioData data) {
    data.config.chip.num_cores = 4;
    data.config.chip.memory.num_cores = 4;
    return data;
  };
  if (!smoke) {
    workloads::StencilConfig stencil;
    stencil.num_ranks = 8;
    add(flat8({"workload/stencil", workloads::build_stencil(stencil),
               mpisim::Placement::identity(8)}));
    workloads::MasterWorkerConfig straggler;
    straggler.num_ranks = 8;
    add(flat8({"workload/straggler", workloads::build_master_worker(straggler),
               mpisim::Placement::identity(8)}));
  }
  {
    workloads::DriftConfig drift;
    drift.num_ranks = 8;
    if (smoke) drift.iterations = 6;
    add(flat8({"workload/drift", workloads::build_drift(drift),
               mpisim::Placement::identity(8)}));
  }

  // Heterogeneous clusters. mixed-width: a stencil spanning an SMT2 node
  // and an SMT4 node, seated by capacity — per-node seat ranking is what
  // discriminates shape-aware policies here. hetero-drift: the drifting
  // front crossing a cluster whose second node is clocked 20% slower.
  {
    cluster::ClusterConfig config;
    config.num_nodes = 2;
    config.node_shapes = {{}, {.threads_per_core = 4}};
    std::vector<std::uint32_t> contexts, tpc;
    for (std::uint32_t node = 0; node < config.num_nodes; ++node) {
      const smt::ChipConfig chip = config.node_chip(node);
      contexts.push_back(chip.num_contexts());
      tpc.push_back(chip.threads_per_core());
    }
    workloads::StencilConfig stencil;
    stencil.num_ranks = 10;
    if (smoke) stencil.iterations = 5;
    ScenarioData data{"cluster/mixed-width", workloads::build_stencil(stencil),
                      {}};
    data.cluster_placement = cluster::ClusterPlacement::block_by_capacity(
        stencil.num_ranks, contexts, tpc);
    data.placement = data.cluster_placement->within;
    data.cluster_config = config;
    add(std::move(data));
  }
  if (!smoke) {
    cluster::ClusterConfig config;
    config.num_nodes = 2;
    config.node_shapes = {{}, {.clock_scale = 0.8}};
    workloads::DriftConfig drift;
    drift.num_ranks = 8;
    ScenarioData data{"cluster/hetero-drift", workloads::build_drift(drift),
                      {}};
    data.cluster_placement = cluster::ClusterPlacement::block(8, 2);
    data.placement = data.cluster_placement->within;
    data.cluster_config = config;
    add(std::move(data));
  }

  // The cluster bench's node-skewed workload.
  {
    cluster::SkewedClusterConfig config;
    if (smoke) config.iterations = 4;
    cluster::SkewedCluster skew = cluster::make_skewed_cluster(config);
    ScenarioData data{"cluster/skewed", std::move(skew.app),
                      skew.placement.within};
    cluster::ClusterConfig cluster_config;
    cluster_config.num_nodes = config.num_nodes;
    data.cluster_placement = std::move(skew.placement);
    data.cluster_config = cluster_config;
    add(std::move(data));
  }

  // The migration showcase: the heavy set hops between nodes every
  // phase, on 4-core nodes with free seats so cross-node rank migration
  // has landing room. Priorities-only policies can at best soften the
  // within-node spread; only the repartition family can chase the skew.
  {
    cluster::TimeVaryingClusterConfig config;
    if (smoke) {
      config.iterations = 8;
      config.phase_length = 4;
      config.base_instructions = 1e9;
    }
    cluster::SkewedCluster varying = cluster::make_time_varying_cluster(config);
    ScenarioData data{"cluster/migrate-varying", std::move(varying.app),
                      varying.placement.within};
    cluster::ClusterConfig cluster_config;
    cluster_config.num_nodes = config.num_nodes;
    cluster_config.node.chip.num_cores = 4;
    cluster_config.node.chip.memory.num_cores = 4;
    data.cluster_placement = std::move(varying.placement);
    data.cluster_config = cluster_config;
    add(std::move(data));
  }
  return corpus;
}

/// Validates an entrant spec early so a typo fails with the registry's
/// did-you-mean error instead of N identical failed runs.
void validate_entrant(const std::string& spec) {
  if (spec == "none") return;
  const mpisim::Placement dummy = mpisim::Placement::identity(2);
  policy::PolicyContext context;
  context.num_ranks = 2;
  context.placement = &dummy;
  (void)policy::Registry::instance().make(spec, context);
}

std::string json_num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

struct Cell {
  bool ok = false;
  std::string error;
  double exec_time = 0.0;
  double imbalance = 0.0;
  double speedup = 0.0;  ///< baseline exec / this exec (0 when unknown)
};

struct Standing {
  std::string policy;
  double geomean_speedup = 0.0;
  std::size_t wins = 0;
  std::size_t scored = 0;  ///< scenarios with both baseline and entrant ok
  double mean_imbalance = 0.0;
};

int run_tournament(bool smoke, std::uint64_t seed_base,
                   std::vector<std::string> entrants,
                   const runner::CliOptions& cli) {
  const auto corpus = build_corpus(smoke, seed_base);
  if (entrants.empty()) {
    entrants.push_back("none");
    for (const policy::PolicyInfo& info : policy::Registry::instance().list()) {
      entrants.push_back(info.name);
    }
  }
  for (const std::string& entrant : entrants) validate_entrant(entrant);

  std::vector<runner::RunSpec> specs;
  specs.reserve(corpus.size() * entrants.size());
  for (const auto& scenario : corpus) {
    for (const std::string& entrant : entrants) {
      runner::RunSpec spec;
      spec.label = scenario->name + " | " + entrant;
      spec.app = scenario->app;
      spec.placement = scenario->placement;
      spec.config = scenario->config;
      spec.cluster_placement = scenario->cluster_placement;
      spec.cluster_config = scenario->cluster_config;
      spec.make_policy = [scenario, entrant]()
          -> std::unique_ptr<mpisim::BalancePolicy> {
        if (entrant == "none") return nullptr;
        policy::PolicyContext context;
        context.num_ranks = scenario->app.size();
        context.threads_per_core =
            (scenario->cluster_config ? scenario->cluster_config->node.chip
                                      : scenario->config.chip)
                .threads_per_core();
        context.placement = scenario->cluster_placement
                                ? &scenario->cluster_placement->within
                                : &scenario->placement;
        context.cluster = scenario->cluster_placement
                              ? &*scenario->cluster_placement
                              : nullptr;
        return policy::Registry::instance().make(entrant, context);
      };
      specs.push_back(std::move(spec));
    }
  }

  const runner::BatchRunner batch_runner(runner::BatchOptions{
      .jobs = cli.jobs, .cache_capacity = cli.cache_capacity});
  const runner::BatchResult batch = batch_runner.run(specs);
  std::cerr << "[tournament] " << runner::describe(batch) << '\n';

  // Score the matrix: cells[s][e], baseline = the "none" column (the
  // first entrant when "none" is not entered — everything is then
  // relative to that policy instead).
  std::size_t baseline = 0;
  for (std::size_t e = 0; e < entrants.size(); ++e) {
    if (entrants[e] == "none") baseline = e;
  }
  std::vector<std::vector<Cell>> cells(
      corpus.size(), std::vector<Cell>(entrants.size()));
  for (std::size_t s = 0; s < corpus.size(); ++s) {
    for (std::size_t e = 0; e < entrants.size(); ++e) {
      const runner::RunOutcome& out = batch.runs[s * entrants.size() + e];
      Cell& cell = cells[s][e];
      cell.ok = out.ok;
      cell.error = out.error;
      if (out.ok) {
        cell.exec_time = out.result->exec_time;
        cell.imbalance = out.result->imbalance;
      }
    }
    const Cell& base = cells[s][baseline];
    if (!base.ok) continue;
    for (std::size_t e = 0; e < entrants.size(); ++e) {
      Cell& cell = cells[s][e];
      if (cell.ok && cell.exec_time > 0.0) {
        cell.speedup = base.exec_time / cell.exec_time;
      }
    }
  }

  std::vector<Standing> standings;
  for (std::size_t e = 0; e < entrants.size(); ++e) {
    Standing standing;
    standing.policy = entrants[e];
    double log_sum = 0.0;
    double imbalance_sum = 0.0;
    for (std::size_t s = 0; s < corpus.size(); ++s) {
      const Cell& cell = cells[s][e];
      if (cell.speedup <= 0.0) continue;
      log_sum += std::log(cell.speedup);
      imbalance_sum += cell.imbalance;
      ++standing.scored;
      if (cell.speedup > 1.0) ++standing.wins;
    }
    if (standing.scored > 0) {
      standing.geomean_speedup =
          std::exp(log_sum / static_cast<double>(standing.scored));
      standing.mean_imbalance =
          imbalance_sum / static_cast<double>(standing.scored);
    }
    standings.push_back(std::move(standing));
  }
  std::sort(standings.begin(), standings.end(),
            [](const Standing& a, const Standing& b) {
              if (a.geomean_speedup != b.geomean_speedup) {
                return a.geomean_speedup > b.geomean_speedup;
              }
              return a.policy < b.policy;
            });

  std::cout << "Policy tournament — " << corpus.size() << " scenarios x "
            << entrants.size() << " entrants"
            << (smoke ? " (smoke corpus)" : "") << "\n\n";
  std::printf("%4s  %-24s %16s %6s %9s %10s\n", "rank", "policy",
              "geomean speedup", "wins", "scenarios", "mean imb");
  for (std::size_t i = 0; i < standings.size(); ++i) {
    const Standing& standing = standings[i];
    std::printf("%4zu  %-24s %16.4f %6zu %9zu %10.4f\n", i + 1,
                standing.policy.c_str(), standing.geomean_speedup,
                standing.wins, standing.scored, standing.mean_imbalance);
  }

  std::cout << "\nScenario winners (speedup over the baseline):\n";
  for (std::size_t s = 0; s < corpus.size(); ++s) {
    std::size_t best = baseline;
    for (std::size_t e = 0; e < entrants.size(); ++e) {
      if (cells[s][e].speedup > cells[s][best].speedup ||
          (cells[s][e].speedup == cells[s][best].speedup &&
           entrants[e] < entrants[best])) {
        best = e;
      }
    }
    std::printf("  %-28s %-24s %8.4f\n", corpus[s]->name.c_str(),
                entrants[best].c_str(), cells[s][best].speedup);
  }

  if (!cli.json_path.empty()) {
    std::ofstream os(cli.json_path, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw SimulationError("cannot write " + cli.json_path);
    }
    os << R"({"schema":"smtbal.tournament/1","type":"meta","smoke":)"
       << (smoke ? "true" : "false") << ",\"seed_base\":" << seed_base
       << ",\"baseline\":\"" << json_escape(entrants[baseline])
       << "\",\"policies\":[";
    for (std::size_t e = 0; e < entrants.size(); ++e) {
      os << (e != 0 ? "," : "") << '"' << json_escape(entrants[e]) << '"';
    }
    os << "],\"scenarios\":[";
    for (std::size_t s = 0; s < corpus.size(); ++s) {
      os << (s != 0 ? "," : "") << '"' << json_escape(corpus[s]->name) << '"';
    }
    os << "]}\n";
    for (std::size_t s = 0; s < corpus.size(); ++s) {
      for (std::size_t e = 0; e < entrants.size(); ++e) {
        const Cell& cell = cells[s][e];
        os << R"({"schema":"smtbal.tournament/1","type":"cell","scenario":")"
           << json_escape(corpus[s]->name) << "\",\"policy\":\""
           << json_escape(entrants[e]) << "\",\"ok\":"
           << (cell.ok ? "true" : "false");
        if (cell.ok) {
          os << ",\"exec_time\":" << json_num(cell.exec_time)
             << ",\"imbalance\":" << json_num(cell.imbalance)
             << ",\"speedup\":" << json_num(cell.speedup);
        } else {
          os << ",\"error\":\"" << json_escape(cell.error) << '"';
        }
        os << "}\n";
      }
    }
    for (std::size_t i = 0; i < standings.size(); ++i) {
      const Standing& standing = standings[i];
      os << R"({"schema":"smtbal.tournament/1","type":"rank","rank":)"
         << i + 1 << ",\"policy\":\"" << json_escape(standing.policy)
         << "\",\"geomean_speedup\":" << json_num(standing.geomean_speedup)
         << ",\"wins\":" << standing.wins
         << ",\"scenarios\":" << standing.scored
         << ",\"mean_imbalance\":" << json_num(standing.mean_imbalance)
         << "}\n";
    }
    // The one scheduling-dependent line (sampler/cache counters, incl.
    // evictions and peak_size under --cache-capacity); drop it before
    // diffing files from different --jobs values.
    os << runner::to_json_batch_record(batch) << '\n';
  }

  std::size_t failures = 0;
  for (const runner::RunOutcome& out : batch.runs) {
    if (out.ok) continue;
    ++failures;
    std::cerr << "[tournament] FAILED " << out.label << ": " << out.error
              << '\n';
  }
  return failures == 0 ? 0 : 1;
}

void list_policies() {
  std::cout << "Registered policies (spec syntax: name[:key=value,...]):\n";
  for (const policy::PolicyInfo& info : policy::Registry::instance().list()) {
    std::cout << "\n  " << info.name << "\n    " << info.summary << '\n';
    if (!info.schema.empty()) {
      std::cout << "    keys: " << info.schema << '\n';
    }
  }
  std::cout << "\n  none\n    baseline: no policy, every rank at the kernel "
               "default\n";
}

}  // namespace

int main(int argc, char** argv) try {
  const runner::CliOptions cli = runner::parse_cli(argc, argv);
  bool smoke = false;
  bool list_scenarios = false;
  std::uint64_t seed_base = 4200;
  std::vector<std::string> entrants;
  for (std::size_t i = 0; i < cli.positional.size(); ++i) {
    const std::string& arg = cli.positional[i];
    auto value_of = [&](const std::string& flag) -> std::string {
      if (arg == flag) {
        SMTBAL_REQUIRE(i + 1 < cli.positional.size(), flag + " needs a value");
        return cli.positional[++i];
      }
      return arg.substr(flag.size() + 1);  // "--flag=value"
    };
    if (arg == "--list-policies") {
      list_policies();
      return 0;
    }
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--list-scenarios") {
      list_scenarios = true;  // deferred: honours a later --smoke/--seed-base
    } else if (arg == "--policies" || arg.rfind("--policies=", 0) == 0) {
      std::istringstream list(value_of("--policies"));
      for (std::string item; std::getline(list, item, ',');) {
        SMTBAL_REQUIRE(!item.empty(), "--policies: empty policy spec");
        entrants.push_back(item);
      }
    } else if (arg == "--seed-base" || arg.rfind("--seed-base=", 0) == 0) {
      seed_base = std::stoull(value_of("--seed-base"));
    } else {
      throw InvalidArgument("unknown argument '" + arg +
                            "' (try --smoke, --policies, --seed-base, "
                            "--list-policies, --list-scenarios, --jobs, "
                            "--json, --cache-capacity)");
    }
  }
  if (list_scenarios) {
    for (const auto& scenario : build_corpus(smoke, seed_base)) {
      std::cout << scenario->name << '\n';
    }
    return 0;
  }
  return run_tournament(smoke, seed_base, std::move(entrants), cli);
} catch (const std::exception& e) {
  std::cerr << "tournament: " << e.what() << '\n';
  return 1;
}
