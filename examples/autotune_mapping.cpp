// Deployment-style example: you have an MPI application whose per-rank
// loads you roughly know; search placements and priorities by simulation
// before submitting the real job.
//
// The 3 x 81 candidate configurations are independent simulations, so
// instead of the serial PriorityAdvisor loop they are enumerated as
// RunSpecs and executed through the BatchRunner — same candidates, same
// winner, any number of workers.
//
//   $ ./autotune_mapping [--jobs N] [--json FILE] [load1 load2 load3 load4]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/advisor.hpp"
#include "core/balancer.hpp"
#include "core/static_policy.hpp"
#include "isa/kernel.hpp"
#include "runner/batch.hpp"
#include "runner/report.hpp"

using namespace smtbal;

int main(int argc, char** argv) {
  runner::CliOptions cli;
  try {
    cli = runner::parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  std::vector<double> loads{1.0, 0.3, 0.8, 0.5};
  if (cli.positional.size() == 4) {
    for (std::size_t i = 0; i < 4; ++i) {
      loads[i] = std::atof(cli.positional[i].c_str());
    }
  } else if (!cli.positional.empty()) {
    std::cerr << "usage: " << argv[0]
              << " [--jobs N] [--json FILE] [load1 load2 load3 load4]\n";
    return 1;
  }

  // Model the application: per iteration each rank computes its share and
  // everyone synchronises at a barrier.
  const isa::KernelId kernel =
      isa::KernelRegistry::instance().by_name(isa::kKernelCfd).id;
  mpisim::Application app;
  app.name = "user-app";
  app.ranks.resize(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (int i = 0; i < 6; ++i) {
      app.ranks[r].compute(kernel, 2e9 * loads[r]).barrier();
    }
  }

  std::cout << "per-rank loads:";
  for (double load : loads) std::cout << ' ' << load;
  std::cout << "\nsearching 3 placements x 3^4 priority vectors...\n\n";

  // Enumerate the same candidate space AdvisorConfig{priority_levels={4,5,6},
  // placements, max_candidates=3*81} would, one RunSpec per candidate, plus
  // the identity-mapping default-priority baseline as the final spec.
  const std::vector<int> levels{4, 5, 6};
  const std::vector<std::vector<std::uint32_t>> placements{
      {0, 1, 2, 3}, {0, 2, 1, 3}, {0, 2, 3, 1}};

  std::vector<core::AdvisorCandidate> candidates;
  std::vector<runner::RunSpec> specs;
  for (const auto& linear : placements) {
    const auto placement = mpisim::Placement::from_linear(linear);
    for (std::size_t v = 0; v < 81; ++v) {
      std::vector<int> priorities(4);
      std::size_t code = v;
      for (std::size_t r = 0; r < 4; ++r) {
        priorities[r] = levels[code % levels.size()];
        code /= levels.size();
      }
      core::AdvisorCandidate candidate{placement, priorities, 0.0, 0.0};
      runner::RunSpec spec;
      spec.label = core::describe(candidate);
      spec.app = app;
      spec.placement = placement;
      spec.make_policy = [priorities] {
        return std::unique_ptr<mpisim::BalancePolicy>(
            new core::StaticPriorityPolicy(priorities));
      };
      specs.push_back(std::move(spec));
      candidates.push_back(std::move(candidate));
    }
  }
  {
    runner::RunSpec baseline;
    baseline.label = "baseline";
    baseline.app = app;
    baseline.placement = mpisim::Placement::identity(4);
    specs.push_back(std::move(baseline));
  }

  const runner::BatchRunner batch_runner(runner::BatchOptions{.jobs = cli.jobs});
  const runner::BatchResult batch = batch_runner.run(specs);
  if (!cli.json_path.empty()) runner::write_jsonl_file(batch, cli.json_path);
  std::cerr << "[batch] " << runner::describe(batch) << '\n';
  for (const runner::RunOutcome& out : batch.runs) {
    if (!out.ok) {
      std::cerr << "candidate " << out.label << " failed: " << out.error << '\n';
      return 1;
    }
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i].exec_time = batch.runs[i].result->exec_time;
    candidates[i].imbalance = batch.runs[i].result->imbalance;
  }
  // Stable sort: ties keep enumeration order, so the printed winner is
  // identical for any worker count.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const core::AdvisorCandidate& a,
                      const core::AdvisorCandidate& b) {
                     return a.exec_time < b.exec_time;
                   });

  const auto& best = candidates.front();
  const auto& worst = candidates.back();
  std::cout << "best:  " << core::describe(best) << "  ("
            << best.exec_time << " s)\n";
  std::cout << "worst: " << core::describe(worst) << "  ("
            << worst.exec_time << " s, "
            << worst.exec_time / best.exec_time << "x slower)\n\n";

  // How much of the win comes from the mapping alone?
  const auto& baseline = *batch.runs.back().result;
  std::cout << "identity mapping, default priorities: " << baseline.exec_time
            << " s\n"
            << "tuned configuration:                  " << best.exec_time
            << " s  ("
            << (1.0 - best.exec_time / baseline.exec_time) * 100.0
            << "% faster)\n";
  return 0;
}
