// Deployment-style example: you have an MPI application whose per-rank
// loads you roughly know; let the PriorityAdvisor search placements and
// priorities by simulation before submitting the real job.
//
//   $ ./autotune_mapping 1.0 0.3 0.8 0.5     # relative per-rank loads
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/advisor.hpp"
#include "core/balancer.hpp"
#include "isa/kernel.hpp"

using namespace smtbal;

int main(int argc, char** argv) {
  std::vector<double> loads{1.0, 0.3, 0.8, 0.5};
  if (argc == 5) {
    for (int i = 0; i < 4; ++i) loads[static_cast<std::size_t>(i)] = std::atof(argv[i + 1]);
  } else if (argc != 1) {
    std::cerr << "usage: " << argv[0] << " [load1 load2 load3 load4]\n";
    return 1;
  }

  // Model the application: per iteration each rank computes its share and
  // everyone synchronises at a barrier.
  const isa::KernelId kernel =
      isa::KernelRegistry::instance().by_name(isa::kKernelCfd).id;
  mpisim::Application app;
  app.name = "user-app";
  app.ranks.resize(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (int i = 0; i < 6; ++i) {
      app.ranks[r].compute(kernel, 2e9 * loads[r]).barrier();
    }
  }

  std::cout << "per-rank loads:";
  for (double load : loads) std::cout << ' ' << load;
  std::cout << "\nsearching 3 placements x 3^4 priority vectors...\n\n";

  core::Balancer balancer;
  core::PriorityAdvisor advisor(balancer);
  core::AdvisorConfig config;
  config.priority_levels = {4, 5, 6};
  config.placements = {{0, 1, 2, 3}, {0, 2, 1, 3}, {0, 2, 3, 1}};
  config.max_candidates = 3 * 81;

  const auto results = advisor.search(app, config);

  const auto& best = results.front();
  const auto& worst = results.back();
  std::cout << "best:  " << core::describe(best) << "  ("
            << best.exec_time << " s)\n";
  std::cout << "worst: " << core::describe(worst) << "  ("
            << worst.exec_time << " s, "
            << worst.exec_time / best.exec_time << "x slower)\n\n";

  // How much of the win comes from the mapping alone?
  const auto baseline = balancer.run(app, mpisim::Placement::identity(4));
  std::cout << "identity mapping, default priorities: " << baseline.exec_time
            << " s\n"
            << "tuned configuration:                  " << best.exec_time
            << " s  ("
            << (1.0 - best.exec_time / baseline.exec_time) * 100.0
            << "% faster)\n";
  return 0;
}
