// Priority-response explorer: measures how the two SMT contexts of one
// core divide throughput as the hardware-priority gap grows, for any
// builtin kernel — the tool you would use to calibrate a balancing
// policy for a new workload (and the data behind paper Table II).
//
// The ten chip configurations are independent cycle-level measurements,
// so they run in parallel through BatchRunner::sample(); the printed
// table is identical for any worker count.
//
//   $ ./priority_sweep                    # uses hpc_mixed
//   $ ./priority_sweep dft_scf            # any builtin kernel name
//   $ ./priority_sweep --jobs 4 dft_scf   # measure on 4 workers
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "isa/kernel.hpp"
#include "runner/batch.hpp"
#include "smt/sampler.hpp"

using namespace smtbal;
using namespace smtbal::smt;

int main(int argc, char** argv) {
  runner::CliOptions cli;
  try {
    cli = runner::parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  const std::string name =
      cli.positional.empty() ? std::string(isa::kKernelHpcMixed)
                             : cli.positional.front();
  const auto& registry = isa::KernelRegistry::instance();
  if (!registry.contains(name)) {
    std::cerr << "unknown kernel '" << name << "'; available:\n";
    for (const auto& kernel : registry.all()) {
      std::cerr << "  " << kernel.name() << '\n';
    }
    return 1;
  }
  const isa::KernelId kernel = registry.by_name(name).id;

  // loads[0] is the single-thread reference; loads[1..9] the priority pairs.
  std::vector<ChipLoad> loads;
  {
    ChipLoad solo;
    solo.contexts[0] = ContextLoad{kernel, HwPriority::kVeryHigh};
    loads.push_back(solo);
  }
  std::vector<std::pair<int, int>> pairs;
  for (int diff = -4; diff <= 4; ++diff) {
    const int pa = diff <= 0 ? 6 + diff : 6;
    const int pb = diff <= 0 ? 6 : 6 - diff;
    ChipLoad load;
    load.contexts[0] = ContextLoad{kernel, priority_from_int(pa)};
    load.contexts[1] = ContextLoad{kernel, priority_from_int(pb)};
    loads.push_back(load);
    pairs.emplace_back(pa, pb);
  }

  const runner::BatchRunner batch(runner::BatchOptions{.jobs = cli.jobs});
  const std::vector<SampleResult> results =
      batch.sample(ChipConfig{}, ThroughputSampler::Options{}, loads);

  const double solo_ipc = results[0].ipc[0];
  std::cout << "kernel: " << name << "\nsingle-thread (ST mode) IPC: "
            << TextTable::num(solo_ipc, 3) << "\n\n";

  TextTable table({"prio A", "prio B", "IPC A", "IPC B", "A (x solo)",
                   "B (x solo)", "total (x solo)"});
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& rates = results[i + 1];
    table.add_row({std::to_string(pairs[i].first), std::to_string(pairs[i].second),
                   TextTable::num(rates.ipc[0], 3),
                   TextTable::num(rates.ipc[1], 3),
                   TextTable::num(rates.ipc[0] / solo_ipc, 2),
                   TextTable::num(rates.ipc[1] / solo_ipc, 2),
                   TextTable::num((rates.ipc[0] + rates.ipc[1]) / solo_ipc, 2)});
  }
  std::cout << table.render();
  std::cout << "\nReading the table: equal priorities split the core fairly\n"
               "with a real SMT throughput gain; each level of difference\n"
               "roughly halves the starved thread while the favored one\n"
               "saturates — choose the gap that matches your load ratio, and\n"
               "never overshoot (paper SVII-A case D).\n";
  return 0;
}
