// Quickstart: simulate an imbalanced 4-rank MPI application on the
// POWER5-like node, then fix it with a static hardware-priority
// assignment — the paper's core idea in ~50 lines.
//
//   $ ./quickstart
#include <iostream>

#include "core/balancer.hpp"
#include "core/static_policy.hpp"
#include "isa/kernel.hpp"
#include "trace/gantt.hpp"

using namespace smtbal;

int main() {
  // 1. Describe the application: four ranks, each computing then meeting
  //    at a barrier, ten times. Rank 1 and rank 3 (one per core) carry
  //    five times the work of their core-mates.
  const isa::KernelId kernel =
      isa::KernelRegistry::instance().by_name(isa::kKernelHpcMixed).id;
  mpisim::Application app;
  app.name = "quickstart";
  app.ranks.resize(4);
  for (std::size_t r = 0; r < app.size(); ++r) {
    const double work = (r % 2 == 1) ? 5e9 : 1e9;
    for (int iteration = 0; iteration < 10; ++iteration) {
      app.ranks[r].compute(kernel, work).barrier();
    }
  }

  // 2. Pin rank i to CPU i (ranks 0,1 share core 1; ranks 2,3 share
  //    core 2) and build the simulator facade.
  const auto placement = mpisim::Placement::identity(app.size());
  core::Balancer balancer;

  // 3. Reference run: every context at the default MEDIUM priority.
  const auto before = balancer.run(app, placement);
  std::cout << "default priorities:  exec " << before.exec_time
            << " s, imbalance " << before.imbalance * 100 << " %\n";

  // 4. Balanced run: give the busy ranks more decode slots through the
  //    patched kernel's /proc/<pid>/hmt_priority interface.
  core::StaticPriorityPolicy policy({4, 6, 4, 6});
  const auto after = balancer.run(app, placement, &policy);
  std::cout << "priorities {4,6,4,6}: exec " << after.exec_time
            << " s, imbalance " << after.imbalance * 100 << " %\n";
  std::cout << "speedup: " << before.exec_time / after.exec_time << "x\n\n";

  // 5. Look at the traces (dark '#' = computing, '-' = waiting in MPI).
  std::cout << "before:\n"
            << trace::render_gantt(before.trace, {.width = 72})
            << "\nafter:\n"
            << trace::render_gantt(after.trace, {.width = 72});
  return 0;
}
