// Two-level balancing on a small cluster: two SMT nodes run the same
// heavy/light rank mix, but node 0's ranks carry 1.6x the work, so the
// whole cluster waits for them at every barrier. The two-level balancer
// fixes the within-node imbalance with one DynamicBalancer per node and
// additionally widens the lagging node's priority-gap ceiling, and the
// multi-node PARAVER export places each rank on its hosting node.
//
//   $ ./cluster_balancing [--hetero] [--workload NAME] [out.prv]
//
//   --hetero          make node 1 an SMT4 chip (node 0 stays SMT2) and
//                     seat the ranks by capacity: the wide node hosts
//                     more of them
//   --workload NAME   skewed (default) | stencil | straggler | drift
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "cluster/balancer.hpp"
#include "cluster/engine.hpp"
#include "cluster/placement.hpp"
#include "cluster/workload.hpp"
#include "common/error.hpp"
#include "trace/paraver.hpp"
#include "workloads/drift.hpp"
#include "workloads/master_worker.hpp"
#include "workloads/stencil.hpp"

using namespace smtbal;

namespace {

struct Setup {
  mpisim::Application app;
  cluster::ClusterPlacement placement;
  cluster::ClusterConfig config;
};

Setup make_setup(const std::string& workload, bool hetero) {
  Setup setup;
  setup.config.num_nodes = 2;
  if (hetero) {
    // Node 1 doubles its SMT width; node 0 keeps the base shape.
    setup.config.node_shapes = {{}, {.threads_per_core = 4}};
  }

  if (workload == "skewed") {
    cluster::SkewedClusterConfig skew_config;
    skew_config.num_nodes = 2;
    skew_config.ranks_per_node = 4;
    skew_config.iterations = 8;
    skew_config.base_instructions = 1e9;
    skew_config.light_fraction = 0.1;  // light ranks off the critical path
    skew_config.node_scale = {1.6};    // node 0 carries 1.6x the work
    cluster::SkewedCluster skew = cluster::make_skewed_cluster(skew_config);
    setup.app = std::move(skew.app);
    // The skewed builder's block seating is valid on the hetero cluster
    // too: overrides only widen node 1, never shrink it.
    setup.placement = std::move(skew.placement);
    return setup;
  }

  const std::size_t num_ranks = hetero ? 10 : 8;
  if (workload == "stencil") {
    workloads::StencilConfig config;
    config.num_ranks = num_ranks;
    setup.app = workloads::build_stencil(config);
  } else if (workload == "straggler") {
    workloads::MasterWorkerConfig config;
    config.num_ranks = num_ranks;
    setup.app = workloads::build_master_worker(config);
  } else if (workload == "drift") {
    workloads::DriftConfig config;
    config.num_ranks = num_ranks;
    setup.app = workloads::build_drift(config);
  } else {
    throw InvalidArgument("unknown --workload '" + workload +
                          "' (try skewed, stencil, straggler, drift)");
  }
  if (hetero) {
    std::vector<std::uint32_t> contexts, tpc;
    for (std::uint32_t n = 0; n < setup.config.num_nodes; ++n) {
      const smt::ChipConfig chip = setup.config.node_chip(n);
      contexts.push_back(chip.num_contexts());
      tpc.push_back(chip.threads_per_core());
    }
    setup.placement = cluster::ClusterPlacement::block_by_capacity(
        num_ranks, contexts, tpc);
  } else {
    setup.placement = cluster::ClusterPlacement::block(num_ranks, 2);
  }
  return setup;
}

cluster::ClusterRunResult run_case(const Setup& setup,
                                   cluster::TwoLevelBalancer* policy) {
  cluster::ClusterEngine engine(setup.app, setup.placement, setup.config);
  if (policy != nullptr) engine.set_policy(policy);
  return engine.run();
}

void print_case(const char* label, const cluster::ClusterRunResult& result) {
  std::cout << label << " exec " << result.flat.exec_time << " s, imbalance "
            << result.flat.imbalance * 100 << " %\n";
  for (std::size_t n = 0; n < result.nodes.size(); ++n) {
    const cluster::NodeStats& node = result.nodes[n];
    std::cout << "  node " << n << ": " << node.ranks << " ranks, compute "
              << node.compute << " s, wait " << node.wait << " s\n";
  }
}

}  // namespace

int main(int argc, char** argv) try {
  bool hetero = false;
  std::string workload = "skewed";
  std::string path = "cluster_balancing.prv";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--hetero") {
      hetero = true;
    } else if (arg == "--workload") {
      SMTBAL_REQUIRE(i + 1 < argc, "--workload needs a value");
      workload = argv[++i];
    } else if (arg.rfind("--workload=", 0) == 0) {
      workload = arg.substr(std::string("--workload=").size());
    } else if (arg.rfind("--", 0) == 0) {
      throw InvalidArgument("unknown argument '" + arg +
                            "' (try --hetero, --workload)");
    } else {
      path = arg;
    }
  }

  const Setup setup = make_setup(workload, hetero);
  const cluster::ClusterRunResult baseline = run_case(setup, nullptr);
  print_case("all-MEDIUM:", baseline);

  // Outer level may widen a lagging node's gap ceiling by one step.
  cluster::TwoLevelBalancerConfig policy_config;
  policy_config.inner.max_diff = 1;
  policy_config.max_node_boost = 1;
  cluster::TwoLevelBalancer policy(setup.placement, policy_config);
  const cluster::ClusterRunResult balanced = run_case(setup, &policy);

  std::cout << '\n';
  print_case("two-level: ", balanced);
  std::cout << "  node gap boosts:";
  for (std::uint32_t n = 0; n < setup.config.num_nodes; ++n) {
    std::cout << ' ' << policy.node_boost(n);
  }
  std::cout << "\n  "
            << (1.0 - balanced.flat.exec_time / baseline.flat.exec_time) * 100.0
            << "% faster than all-MEDIUM\n";

  std::ofstream out(path);
  out << trace::to_prv(balanced.flat.trace, balanced.node_of_rank);
  std::cout << "\nPARAVER trace written to " << path << " ("
            << balanced.node_of_rank.size() << " tasks on "
            << balanced.nodes.size() << " nodes)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "cluster_balancing: " << e.what() << '\n';
  return 1;
}
