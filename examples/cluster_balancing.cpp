// Two-level balancing on a small cluster: two SMT nodes run the same
// heavy/light rank mix, but node 0's ranks carry 1.6x the work, so the
// whole cluster waits for them at every barrier. The two-level balancer
// fixes the within-node imbalance with one DynamicBalancer per node and
// additionally widens the lagging node's priority-gap ceiling, and the
// multi-node PARAVER export places each rank on its hosting node.
//
//   $ ./cluster_balancing [out.prv]
#include <cstdint>
#include <fstream>
#include <iostream>

#include "cluster/balancer.hpp"
#include "cluster/engine.hpp"
#include "cluster/workload.hpp"
#include "trace/paraver.hpp"

using namespace smtbal;

namespace {

cluster::ClusterRunResult run_case(const cluster::SkewedClusterConfig& workload,
                                   cluster::TwoLevelBalancer* policy) {
  cluster::SkewedCluster skew = cluster::make_skewed_cluster(workload);
  cluster::ClusterConfig config;
  config.num_nodes = workload.num_nodes;
  cluster::ClusterEngine engine(std::move(skew.app), skew.placement, config);
  if (policy != nullptr) engine.set_policy(policy);
  return engine.run();
}

void print_case(const char* label, const cluster::ClusterRunResult& result) {
  std::cout << label << " exec " << result.flat.exec_time << " s, imbalance "
            << result.flat.imbalance * 100 << " %\n";
  for (std::size_t n = 0; n < result.nodes.size(); ++n) {
    const cluster::NodeStats& node = result.nodes[n];
    std::cout << "  node " << n << ": " << node.ranks << " ranks, compute "
              << node.compute << " s, wait " << node.wait << " s\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  cluster::SkewedClusterConfig workload;
  workload.num_nodes = 2;
  workload.ranks_per_node = 4;
  workload.iterations = 8;
  workload.base_instructions = 1e9;
  workload.light_fraction = 0.1;   // keep the light ranks off the critical path
  workload.node_scale = {1.6};     // node 0 carries 1.6x the work

  const cluster::ClusterRunResult baseline = run_case(workload, nullptr);
  print_case("all-MEDIUM:", baseline);

  // Outer level may widen a lagging node's gap ceiling by one step.
  cluster::SkewedCluster skew = cluster::make_skewed_cluster(workload);
  cluster::TwoLevelBalancerConfig policy_config;
  policy_config.inner.max_diff = 1;
  policy_config.max_node_boost = 1;
  cluster::TwoLevelBalancer policy(skew.placement, policy_config);
  cluster::ClusterConfig config;
  config.num_nodes = workload.num_nodes;
  cluster::ClusterEngine engine(std::move(skew.app), skew.placement, config);
  engine.set_policy(&policy);
  const cluster::ClusterRunResult balanced = engine.run();

  std::cout << '\n';
  print_case("two-level: ", balanced);
  std::cout << "  node gap boosts:";
  for (std::uint32_t n = 0; n < workload.num_nodes; ++n) {
    std::cout << ' ' << policy.node_boost(n);
  }
  std::cout << "\n  "
            << (1.0 - balanced.flat.exec_time / baseline.flat.exec_time) * 100.0
            << "% faster than all-MEDIUM\n";

  const std::string path = argc > 1 ? argv[1] : "cluster_balancing.prv";
  std::ofstream out(path);
  out << trace::to_prv(balanced.flat.trace, balanced.node_of_rank);
  std::cout << "\nPARAVER trace written to " << path << " ("
            << balanced.node_of_rank.size() << " tasks on "
            << balanced.nodes.size() << " nodes)\n";
  return 0;
}
