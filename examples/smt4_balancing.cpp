// Priority balancing on an SMT4 chip: eight ranks on a 2-core x
// 4-context node (threads_per_core = 4), one overloaded rank per core,
// rebalanced through the generalized weighted decode arbiter. The POWER5
// paper stops at 2-way cores; this is the N-way extrapolation described
// in DESIGN.md §8.
//
//   $ ./smt4_balancing
#include <iostream>

#include "core/balancer.hpp"
#include "core/static_policy.hpp"
#include "isa/kernel.hpp"
#include "trace/gantt.hpp"

using namespace smtbal;

int main() {
  // 1. An imbalanced app: ranks 1 and 5 (one per core) carry four times
  //    the work of their three core-mates.
  const isa::KernelId kernel =
      isa::KernelRegistry::instance().by_name(isa::kKernelHpcMixed).id;
  mpisim::Application app;
  app.name = "smt4-balancing";
  app.ranks.resize(8);
  for (std::size_t r = 0; r < app.size(); ++r) {
    const double work = (r == 1 || r == 5) ? 4e9 : 1e9;
    for (int iteration = 0; iteration < 10; ++iteration) {
      app.ranks[r].compute(kernel, work).barrier();
    }
  }

  // 2. An SMT4 chip: the paper's node with threads_per_core raised to 4.
  //    Rank i pins to CPU i, so ranks 0-3 share core 1 and 4-7 core 2.
  mpisim::EngineConfig config;
  config.chip.core.threads_per_core = 4;
  const auto placement =
      mpisim::Placement::identity(app.size(), config.chip.threads_per_core());
  core::Balancer balancer(config);

  // 3. Reference run: every context at the default MEDIUM priority — the
  //    heavy ranks get 1/4 of their core's decode slice and hold
  //    everyone at the barrier.
  const auto before = balancer.run(app, placement);
  std::cout << "all MEDIUM:            exec " << before.exec_time
            << " s, imbalance " << before.imbalance * 100 << " %\n";

  // 4. Balanced run: HIGH (6) for the heavy ranks. In the weighted N-way
  //    slice the heavy context owns 7 of 10 decode cycles and the three
  //    light core-mates 1 each.
  core::StaticPriorityPolicy policy({4, 6, 4, 4, 4, 6, 4, 4});
  const auto after = balancer.run(app, placement, &policy);
  std::cout << "heavy ranks at HIGH:   exec " << after.exec_time
            << " s, imbalance " << after.imbalance * 100 << " %\n";
  std::cout << "speedup: " << before.exec_time / after.exec_time << "x\n\n";

  // 5. The traces (dark '#' = computing, '-' = waiting in MPI).
  std::cout << "before:\n"
            << trace::render_gantt(before.trace, {.width = 72})
            << "\nafter:\n"
            << trace::render_gantt(after.trace, {.width = 72});
  return 0;
}
