// A SIESTA-like irregular application balanced at run time by the
// wait-gap controller (the paper's proposed future work), with the
// resulting trace exported in PARAVER .prv format for the real tool.
//
//   $ ./dynamic_balancing [out.prv]
#include <fstream>
#include <iostream>

#include "core/balancer.hpp"
#include "core/dynamic_policy.hpp"
#include "trace/gantt.hpp"
#include "trace/paraver.hpp"
#include "workloads/siesta.hpp"

using namespace smtbal;

int main(int argc, char** argv) {
  workloads::SiestaConfig config;
  config.iterations = 16;
  const auto app = workloads::build_siesta(config);

  // Pair the similarly-loaded ranks per core (the paper's B-D mapping):
  // a sane placement is a precondition for priority balancing.
  const auto placement = mpisim::Placement::from_linear({2, 0, 1, 3});

  core::Balancer balancer;
  const auto baseline = balancer.run(app, placement);
  std::cout << "no balancing:     exec " << baseline.exec_time
            << " s, imbalance " << baseline.imbalance * 100 << " %\n";

  core::DynamicBalancer policy;  // conservative defaults: gap <= 1
  const auto balanced = balancer.run(app, placement, &policy);
  std::cout << "dynamic balancer: exec " << balanced.exec_time
            << " s, imbalance " << balanced.imbalance * 100 << " % ("
            << policy.adjustments() << " priority rewrites, "
            << (1.0 - balanced.exec_time / baseline.exec_time) * 100.0
            << "% faster)\n\n";

  std::cout << "balanced trace:\n"
            << trace::render_gantt(balanced.trace, {.width = 96});

  const std::string path = argc > 1 ? argv[1] : "dynamic_balancing.prv";
  std::ofstream out(path);
  out << trace::to_prv(balanced.trace);
  std::cout << "\nPARAVER trace written to " << path << " ("
            << balanced.trace.num_ranks() << " tasks)\n";
  return 0;
}
