// A SIESTA-like irregular application balanced at run time by the
// wait-gap controller (the paper's proposed future work), with the
// resulting trace exported in PARAVER .prv format for the real tool.
//
//   $ ./dynamic_balancing [out.prv]
//   $ ./dynamic_balancing --policy allocation:interval=2
//   $ ./dynamic_balancing --list-policies
//
// --policy swaps the balancer for any policy::Registry spec (unknown
// names fail with a did-you-mean suggestion); --list-policies prints the
// registry with each policy's config-string schema.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/balancer.hpp"
#include "policy/registry.hpp"
#include "trace/gantt.hpp"
#include "trace/paraver.hpp"
#include "workloads/siesta.hpp"

using namespace smtbal;

namespace {

void list_policies() {
  std::cout << "Registered policies (spec syntax: name[:key=value,...]):\n";
  for (const policy::PolicyInfo& info : policy::Registry::instance().list()) {
    std::cout << "\n  " << info.name << "\n    " << info.summary << '\n';
    if (!info.schema.empty()) {
      std::cout << "    keys: " << info.schema << '\n';
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec = "dynamic";
  std::string path = "dynamic_balancing.prv";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-policies") {
      list_policies();
      return 0;
    }
    if (arg == "--policy") {
      if (++i >= argc) {
        std::cerr << "--policy requires a registry spec\n";
        return 2;
      }
      spec = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dynamic_balancing [out.prv] [--policy SPEC] "
                   "[--list-policies]\n";
      return 0;
    } else {
      path = arg;
    }
  }

  workloads::SiestaConfig config;
  config.iterations = 16;
  const auto app = workloads::build_siesta(config);

  // Pair the similarly-loaded ranks per core (the paper's B-D mapping):
  // a sane placement is a precondition for priority balancing.
  const auto placement = mpisim::Placement::from_linear({2, 0, 1, 3});

  // Build the policy by name so any registered family — priorities,
  // placement moves, budgets — can drive the same run.
  policy::PolicyContext context;
  context.num_ranks = app.size();
  context.placement = &placement;
  std::unique_ptr<mpisim::BalancePolicy> policy;
  try {
    policy = policy::Registry::instance().make(spec, context);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  core::Balancer balancer;
  const auto baseline = balancer.run(app, placement);
  std::cout << "no balancing:     exec " << baseline.exec_time
            << " s, imbalance " << baseline.imbalance * 100 << " %\n";

  const auto balanced = balancer.run(app, placement, policy.get());
  std::cout << policy->name() << ": exec " << balanced.exec_time
            << " s, imbalance " << balanced.imbalance * 100 << " % ("
            << (1.0 - balanced.exec_time / baseline.exec_time) * 100.0
            << "% faster)\n\n";

  std::cout << "balanced trace:\n"
            << trace::render_gantt(balanced.trace, {.width = 96});

  std::ofstream out(path);
  out << trace::to_prv(balanced.trace);
  std::cout << "\nPARAVER trace written to " << path << " ("
            << balanced.trace.num_ranks() << " tasks)\n";
  return 0;
}
